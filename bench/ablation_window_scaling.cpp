// Ablation: windowed-engine throughput and burst-detection latency vs
// worker count vs epoch size.
//
// The paper's motivating scenario (Section 1, realtime DDoS detection) at
// engine scale: W producer threads feed W worker shards of a windowed
// HhhEngine, with a burst planted at 60% of the stream (30% of subsequent
// traffic toward one /16 -> victim pair). The driver closes a window epoch
// every `epoch` records via rotate_epoch() and probes the two-window
// snapshot's emerging() every quarter epoch -- deterministic stream-position
// pacing, so the detection-latency column is reproducible on any host and
// core count (the wall/packet coordinator clock of EngineConfig is
// exercised by tests/test_engine.cpp and examples/ddos_burst_demo instead;
// a busy single-core host schedules it too coarsely to pace a benchmark).
//
// Columns: ingest throughput (Mpps, lossless blocking overflow, clock from
// first push until every record is consumed, rotation + probe quiesces
// included), detection latency in packets past burst start (kpkt), windows
// closed, drops. Smaller epochs detect sooner but quiesce more often; more
// workers push Mpps up until transport (or the host's core count) binds.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "util/random.hpp"

using namespace rhhh;
using namespace rhhh::bench;

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  print_figure_header(
      "Window scaling",
      "Windowed engine: throughput + burst detection latency vs workers vs "
      "epoch size, 2D bytes",
      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(4e6 * args.scale);
  const std::vector<Key128>& keys = trace_keys(h, "chicago16", n);
  const std::size_t burst_start = n * 6 / 10;
  const Ipv4 attack_net = ipv4(66, 66, 0, 0);
  const Ipv4 victim = ipv4(203, 0, 113, 9);
  const Prefix attack_bottom{h.bottom(),
                             Key128::from_pair(attack_net | 0x0102u, victim)};
  // A burst whose onset straddles a window boundary leaves part of itself
  // in the sealed window, capping the observable growth ratio near 2x in
  // the worst alignment -- so the alarm uses 2x growth plus an absolute
  // share floor, which together still reject the stable background.
  const double growth = 2.0;

  print_row({"workers", "epoch/n", "Mpps (95% CI)", "detect kpkt", "windows",
             "drops"});
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    for (const std::size_t div : {16u, 4u}) {
      const std::size_t epoch = std::max<std::size_t>(n / div, 4);
      const std::size_t chunk = std::max<std::size_t>(epoch / 4, 1);
      RunningStats mpps;
      int detected_runs = 0;
      std::uint64_t latency_sum = 0;  ///< over detected runs
      std::uint64_t windows = 0;
      std::uint64_t drops = 0;
      for (int r = 0; r < args.runs; ++r) {
        EngineConfig cfg;
        cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
        cfg.monitor.algorithm = AlgorithmKind::kRhhh;
        cfg.monitor.eps = args.eps;
        cfg.monitor.delta = args.delta;
        cfg.monitor.seed = args.seed + static_cast<std::uint64_t>(r);
        cfg.workers = workers;
        cfg.producers = workers;
        cfg.ring_capacity = 1 << 16;
        cfg.batch = 256;
        cfg.overflow = OverflowPolicy::kBlock;  // lossless: Mpps counts real work
        const std::unique_ptr<HhhEngine> eng = make_engine(cfg);
        eng->start();

        bool run_detected = false;
        std::uint64_t run_latency = 0;
        const auto probe = [&](std::size_t processed) {
          if (run_detected) return;
          const WindowedEngineSnapshot snap = eng->window_snapshot();
          if (!snap.has_previous()) return;
          for (const EmergingPrefix& e : snap.emerging(args.theta, growth)) {
            if (e.share_now > 0.15 && e.growth() >= growth &&
                h.generalizes(e.now.prefix, attack_bottom)) {
              run_detected = true;
              run_latency = processed > burst_start ? processed - burst_start : 0;
              break;
            }
          }
        };

        const double t0 = now_sec();
        // Chunked ingest: W producer threads per quarter-epoch slice, a
        // probe after every slice, a rotation after every full epoch.
        std::size_t next_rotate = epoch;
        for (std::size_t lo = 0; lo < keys.size(); lo += chunk) {
          const std::size_t hi = std::min(lo + chunk, keys.size());
          std::vector<std::thread> producers;
          for (std::uint32_t p = 0; p < workers; ++p) {
            producers.emplace_back([&, p] {
              HhhEngine::Producer& prod = eng->producer(p);
              Xoroshiro128 rng(args.seed * 97 + lo * 31 + p);
              const std::size_t plo = lo + (hi - lo) * p / workers;
              const std::size_t phi = lo + (hi - lo) * (p + 1) / workers;
              for (std::size_t i = plo; i < phi; ++i) {
                if (i >= burst_start && rng.bounded(10) < 3) {
                  prod.ingest(Key128::from_pair(attack_net | rng.bounded(1 << 16),
                                                victim));
                } else {
                  prod.ingest(keys[i]);
                }
              }
              prod.flush();
            });
          }
          for (std::thread& t : producers) t.join();
          // Probe BEFORE sealing: the live window is fullest (and the
          // sealed one oldest) right at the boundary -- the best moment for
          // the straddling-onset case.
          probe(hi);
          if (hi >= next_rotate) {
            eng->rotate_epoch();
            next_rotate += epoch;
          }
        }
        eng->stop();
        const double dt = now_sec() - t0;
        mpps.add(static_cast<double>(keys.size()) / dt / 1e6);

        const EngineStats st = eng->stats();
        if (run_detected) {
          ++detected_runs;
          latency_sum += run_latency;
        }
        windows = st.window_epochs;  // deterministic per run
        drops = st.dropped;          // last run, same basis as windows
      }
      // Mean latency over the runs that detected; a partial hit rate is
      // called out rather than silently reporting one arbitrary run.
      std::string detect_cell = "miss";
      if (detected_runs > 0) {
        detect_cell = fmt(static_cast<double>(latency_sum) /
                          static_cast<double>(detected_runs) / 1e3);
        if (detected_runs < args.runs) {
          detect_cell += " (" + std::to_string(detected_runs) + "/" +
                         std::to_string(args.runs) + ")";
        }
      }
      print_row({std::to_string(workers),
                 xcell(std::string("1/") + std::to_string(div)), ci_cell(mpps),
                 detect_cell, std::to_string(windows), std::to_string(drops)});
    }
  }
  std::printf(
      "\n(expected shape: Mpps tracks the non-windowed engine ablation while\n"
      " cores last [this host: %u hardware threads]; fine epochs [1/16 of the\n"
      " stream] flag the planted burst after fewer packets than coarse ones\n"
      " [1/4], at the cost of 4x the rotation quiesces)\n",
      std::thread::hardware_concurrency());
  return 0;
}
