// Ablation: windowed-engine throughput, burst-detection latency, and
// epoch-boundary drift vs worker count vs epoch size.
//
// The paper's motivating scenario (Section 1, realtime DDoS detection) at
// engine scale: W producer threads feed W worker shards of a windowed
// HhhEngine, with a burst planted at 60% of the stream (30% of subsequent
// traffic toward one /16 -> victim pair). Window epochs close every
// `epoch` records through the engine's own packet budget
// (EngineConfig::epoch_packets) -- the cooperative rotation scheme meters
// the budget at worker batch boundaries and the worker that sees it spent
// rotates in place, so the budget itself paces the run and the old
// deterministic `rotate_epoch()` workaround (which existed because the
// 200us polling clock drifted too far on busy hosts to pace a benchmark)
// is gone. The driver probes the two-window snapshot's emerging() every
// quarter epoch of ingested records.
//
// Columns: ingest throughput (Mpps, lossless blocking overflow, clock from
// first push until every record is consumed, rotation + probe quiesces
// included), detection latency in packets past burst start (kpkt), windows
// closed, measured boundary drift (mean ns between the budget crossing and
// the rotation that sealed the window -- EngineStats drift telemetry), and
// drops. Smaller epochs detect sooner but quiesce more often; more workers
// push Mpps up until transport (or the host's core count) binds.
//
// A second panel A/Bs the drift under cooperative rotation vs the demoted
// 200us-timeslice fallback (cooperative_rotation = false): cooperative
// drift is bounded by one worker batch, the fallback by a polling
// timeslice, so the gap is normally well over an order of magnitude.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "util/random.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

struct SweepResult {
  RunningStats mpps;
  RunningStats drift_ns;  ///< per-run mean boundary drift
  int detected_runs = 0;
  std::uint64_t latency_sum = 0;  ///< over detected runs
  std::uint64_t windows = 0;      ///< last run (deterministic when lossless)
  std::uint64_t drops = 0;        ///< last run, same basis as windows
};

struct SweepInput {
  const Args& args;
  const Hierarchy& h;
  const std::vector<Key128>& keys;
  std::size_t burst_start;
  Ipv4 attack_net;
  Ipv4 victim;
  Prefix attack_bottom;
  double growth;
};

SweepResult run_config(const SweepInput& in, std::uint32_t workers,
                       std::size_t epoch, bool cooperative, bool probes,
                       std::size_t ring_capacity = 1 << 16) {
  const Args& args = in.args;
  const std::size_t chunk = std::max<std::size_t>(epoch / 4, 1);
  SweepResult out;
  for (int r = 0; r < args.runs; ++r) {
    EngineConfig cfg;
    cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
    cfg.monitor.algorithm = AlgorithmKind::kRhhh;
    cfg.monitor.eps = args.eps;
    cfg.monitor.delta = args.delta;
    cfg.monitor.seed = args.seed + static_cast<std::uint64_t>(r);
    cfg.workers = workers;
    cfg.producers = workers;
    cfg.ring_capacity = ring_capacity;
    cfg.batch = 256;
    cfg.overflow = OverflowPolicy::kBlock;  // lossless: Mpps counts real work
    cfg.epoch_packets = epoch;              // the engine paces itself
    cfg.cooperative_rotation = cooperative;
    const std::unique_ptr<HhhEngine> eng = make_engine(cfg);
    eng->start();

    bool run_detected = false;
    std::uint64_t run_latency = 0;
    const auto probe = [&](std::size_t processed) {
      if (run_detected) return;
      const WindowedEngineSnapshot snap = eng->window_snapshot();
      if (!snap.has_previous()) return;
      for (const EmergingPrefix& e : snap.emerging(args.theta, in.growth)) {
        if (e.share_now > 0.15 && e.growth() >= in.growth &&
            in.h.generalizes(e.now.prefix, in.attack_bottom)) {
          run_detected = true;
          run_latency =
              processed > in.burst_start ? processed - in.burst_start : 0;
          break;
        }
      }
    };

    const double t0 = now_sec();
    // Chunked ingest: W producer threads per quarter-epoch slice, a probe
    // after every slice. Rotation happens inside the engine whenever the
    // consumed budget crosses epoch_packets -- no pacing calls here.
    for (std::size_t lo = 0; lo < in.keys.size(); lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, in.keys.size());
      std::vector<std::thread> producers;
      for (std::uint32_t p = 0; p < workers; ++p) {
        producers.emplace_back([&, p] {
          HhhEngine::Producer& prod = eng->producer(p);
          Xoroshiro128 rng(args.seed * 97 + lo * 31 + p);
          const std::size_t plo = lo + (hi - lo) * p / workers;
          const std::size_t phi = lo + (hi - lo) * (p + 1) / workers;
          for (std::size_t i = plo; i < phi; ++i) {
            if (i >= in.burst_start && rng.bounded(10) < 3) {
              prod.ingest(Key128::from_pair(
                  in.attack_net | rng.bounded(1 << 16), in.victim));
            } else {
              prod.ingest(in.keys[i]);
            }
          }
          prod.flush();
        });
      }
      for (std::thread& t : producers) t.join();
      // Probe right behind the producers: the live window is fullest (and
      // the sealed one oldest) near a boundary -- the best moment for the
      // straddling-onset case. The drift A/B below runs probe-free: every
      // probe quiesce parks the workers, so a budget crossing inside its
      // boundary drain charges the snapshot merge to the drift sample and
      // swamps the rotation-scheme difference being measured.
      if (probes) probe(hi);
    }
    eng->stop();
    const double dt = now_sec() - t0;
    out.mpps.add(static_cast<double>(in.keys.size()) / dt / 1e6);

    const EngineStats st = eng->stats();
    if (st.budget_rotations > 0) {
      out.drift_ns.add(static_cast<double>(st.rotation_drift_ns_total) /
                       static_cast<double>(st.budget_rotations));
    }
    if (run_detected) {
      ++out.detected_runs;
      out.latency_sum += run_latency;
    }
    out.windows = st.window_epochs;
    out.drops = st.dropped;
  }
  return out;
}

std::string detect_cell_of(const SweepResult& res, int runs) {
  // Mean latency over the runs that detected; a partial hit rate is called
  // out rather than silently reporting one arbitrary run.
  if (res.detected_runs == 0) return "miss";
  std::string cell = fmt(static_cast<double>(res.latency_sum) /
                         static_cast<double>(res.detected_runs) / 1e3);
  if (res.detected_runs < runs) {
    cell += " (" + std::to_string(res.detected_runs) + "/" +
            std::to_string(runs) + ")";
  }
  return cell;
}

/// Trajectory-gated drift cell: leading numeric mean (+- CI), compared by
/// check_trajectory under the header's "ns" lower-better direction.
std::string drift_cell_of(const SweepResult& res) {
  return res.drift_ns.count() > 0 ? ci_cell(res.drift_ns) : "n/a";
}

/// Display-only drift cell: the probe-quiesce-inflated sweep rows and the
/// timeslice baseline are scheduler-noise dominated, so a "~" prefix keeps
/// them out of check_trajectory's numeric diff while staying readable.
std::string drift_cell_untracked(const SweepResult& res) {
  if (res.drift_ns.count() == 0) return "n/a";
  // Append-built: `"~" + fmt(...)` trips GCC 12's -Wrestrict false
  // positive (PR105329) at -O3, same as bench_common's xcell.
  std::string cell("~");
  cell += fmt(res.drift_ns.mean());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  print_figure_header(
      "Window scaling",
      "Windowed engine: throughput + burst detection latency + boundary "
      "drift vs workers vs epoch size, 2D bytes",
      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(4e6 * args.scale);
  const std::vector<Key128>& keys = trace_keys(h, "chicago16", n);
  const std::size_t burst_start = n * 6 / 10;
  const Ipv4 attack_net = ipv4(66, 66, 0, 0);
  const Ipv4 victim = ipv4(203, 0, 113, 9);
  const Prefix attack_bottom{h.bottom(),
                             Key128::from_pair(attack_net | 0x0102u, victim)};
  // A burst whose onset straddles a window boundary leaves part of itself
  // in the sealed window, capping the observable growth ratio near 2x in
  // the worst alignment -- so the alarm uses 2x growth plus an absolute
  // share floor, which together still reject the stable background.
  const double growth = 2.0;
  const SweepInput in{args,       h,      keys,          burst_start,
                      attack_net, victim, attack_bottom, growth};

  print_row({"workers", "epoch/n", "Mpps (95% CI)", "detect kpkt", "windows",
             "drift ns", "drops"});
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    for (const std::size_t div : {16u, 4u}) {
      const std::size_t epoch = std::max<std::size_t>(n / div, 4);
      const SweepResult res = run_config(in, workers, epoch, true, true);
      print_row({std::to_string(workers),
                 xcell(std::string("1/") + std::to_string(div)),
                 ci_cell(res.mpps), detect_cell_of(res, args.runs),
                 std::to_string(res.windows), drift_cell_untracked(res),
                 std::to_string(res.drops)});
    }
  }

  // Drift A/B at a fixed sweep point, probe-free so the sample measures the
  // rotation scheme alone: cooperative rotation (budget checked at worker
  // batch boundaries, crossing worker rotates in place) vs the demoted
  // 200us-timeslice fallback clock. Small blocking rings keep the pipeline
  // in steady state -- backpressure paces the producers to the workers'
  // consumption rate, so rotations happen live instead of piling into the
  // shutdown drain (which never rotates) on oversubscribed hosts. The
  // cooperative row is the trajectory-gated drift cell; the timeslice
  // baseline is scheduler-bound and stays display-only.
  print_row({"rotation", "epoch/n", "drift ns (95% CI)", "windows"});
  const std::size_t ab_epoch = std::max<std::size_t>(n / 16, 4);
  for (const bool cooperative : {true, false}) {
    const SweepResult res = run_config(in, /*workers=*/2, ab_epoch,
                                       cooperative, false, /*ring=*/1 << 10);
    print_row({cooperative ? "cooperative" : "timeslice", xcell("1/16"),
               cooperative ? drift_cell_of(res) : drift_cell_untracked(res),
               std::to_string(res.windows)});
  }

  std::printf(
      "\n(expected shape: Mpps tracks the non-windowed engine ablation while\n"
      " cores last [this host: %u hardware threads]; fine epochs [1/16 of the\n"
      " stream] flag the planted burst after fewer packets than coarse ones\n"
      " [1/4]; cooperative drift sits near one worker batch while the\n"
      " timeslice fallback pays the 200us polling quantum -- typically a\n"
      " >=10x gap)\n",
      std::thread::hardware_concurrency());
  return 0;
}
