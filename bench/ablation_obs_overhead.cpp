// Ablation: what the always-on telemetry layer costs.
//
// Two panels over the planted trace (2D bytes hierarchy):
//   * primitive hot-path cost: RHHH lattice updates alone vs interleaved
//     with the obs instruments they would carry (sharded counter add,
//     log-bucketed histogram record), plus the bare instrument rates --
//     Mops puts the per-record price next to the update it rides on.
//   * engine ingest throughput with EngineConfig::telemetry off (the
//     uninstrumented baseline: every hook compiles down to one null test)
//     vs on (histograms timing each batch push/pop, gauge_fns registered).
//     The acceptance bar is <3% Mpps cost -- printed as measured overhead.
//   * health-layer cost on a windowed engine (rotations actually stamp
//     certificates): telemetry on with certificates + watchdog disabled vs
//     enabled. Probing is rotation-path-only plus one relaxed load per
//     drain pass, so the bar is <1%.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

double engine_mpps(const std::vector<Key128>& keys, std::uint32_t workers,
                   bool telemetry, obs::MetricsRegistry* reg, const Args& args,
                   int run, bool windowed = false, bool health = false) {
  EngineConfig cfg;
  cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
  cfg.monitor.eps = args.eps;
  cfg.monitor.delta = args.delta;
  cfg.monitor.seed = args.seed + static_cast<std::uint64_t>(run);
  cfg.workers = workers;
  cfg.producers = workers;
  cfg.ring_capacity = 1 << 16;
  cfg.batch = 256;
  cfg.policy = ShardPolicy::kKeyHash;
  cfg.overflow = OverflowPolicy::kBlock;  // lossless: Mpps counts real work
  cfg.telemetry = telemetry;
  cfg.metrics = reg;
  if (windowed) {
    // ~8 rotations across the run: every rotation pays the certificate
    // probe + stamp when health is on, nothing extra when off.
    cfg.epoch_packets = std::max<std::uint64_t>(keys.size() / 8, 1);
    cfg.history_depth = 4;
  }
  cfg.health.certificates = health;
  cfg.health.watchdog_millis = health ? 50 : 0;  // in-memory flight recorder
  const std::unique_ptr<HhhEngine> eng = make_engine(cfg);
  eng->start();

  const double t0 = now_sec();
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < workers; ++p) {
    producers.emplace_back([&, p] {
      HhhEngine::Producer& prod = eng->producer(p);
      const std::size_t lo = keys.size() * p / workers;
      const std::size_t hi = keys.size() * (p + 1) / workers;
      for (std::size_t i = lo; i < hi; ++i) prod.ingest(keys[i]);
      prod.flush();
    });
  }
  for (std::thread& t : producers) t.join();
  eng->stop();  // drains every ring
  return static_cast<double>(keys.size()) / (now_sec() - t0) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  print_figure_header(
      "Obs overhead",
      "Telemetry layer cost: instrument primitives and engine ingest, on vs off",
      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(4e6 * args.scale);
  const std::vector<Key128>& keys = trace_keys(h, "chicago16", n);

  obs::MetricsRegistry reg;
  obs::Counter& ctr = reg.counter("bench_obs_updates_total");
  obs::Histogram& hist = reg.histogram("bench_obs_latency_ns");

  std::printf("\n-- primitive hot-path cost, %zu ops each --\n", keys.size());
  print_row({"workload", "Mops (95% CI)"});

  const auto lattice_run = [&](bool with_counter, bool with_hist) {
    RunningStats s;
    for (int r = 0; r < args.runs; ++r) {
      LatticeParams lp;
      lp.eps = args.eps;
      lp.delta = args.delta;
      lp.seed = args.seed + static_cast<std::uint64_t>(r);
      RhhhSpaceSaving lat(h, LatticeMode::kRhhh, lp);
      const double t0 = now_sec();
      for (const Key128& k : keys) {
        lat.update(k);
        if (with_counter) ctr.inc();
        if (with_hist) hist.record(64);
      }
      s.add(static_cast<double>(keys.size()) / (now_sec() - t0) / 1e6);
    }
    return s;
  };

  print_row({"lattice update", ci_cell(lattice_run(false, false))});
  print_row({"update + counter", ci_cell(lattice_run(true, false))});
  print_row({"update + histogram", ci_cell(lattice_run(false, true))});
  {
    RunningStats s;
    for (int r = 0; r < args.runs; ++r) {
      const double t0 = now_sec();
      for (std::size_t i = 0; i < keys.size(); ++i) ctr.inc();
      s.add(static_cast<double>(keys.size()) / (now_sec() - t0) / 1e6);
    }
    print_row({"counter add", ci_cell(s)});
  }
  {
    RunningStats s;
    for (int r = 0; r < args.runs; ++r) {
      const double t0 = now_sec();
      for (std::size_t i = 0; i < keys.size(); ++i) {
        hist.record(i & 0xFFFF);
      }
      s.add(static_cast<double>(keys.size()) / (now_sec() - t0) / 1e6);
    }
    print_row({"histogram record", ci_cell(s)});
  }

  std::printf("\n-- engine ingest, telemetry off vs on --\n");
  print_row({"workers", "off Mpps (95% CI)", "on Mpps (95% CI)"});
  double off_mean_w2 = 0.0;
  double on_mean_w2 = 0.0;
  for (const std::uint32_t workers : {1u, 2u}) {
    RunningStats off;
    RunningStats on;
    for (int r = 0; r < args.runs; ++r) {
      off.add(engine_mpps(keys, workers, false, &reg, args, r));
      on.add(engine_mpps(keys, workers, true, &reg, args, r));
    }
    if (workers == 2) {
      off_mean_w2 = off.mean();
      on_mean_w2 = on.mean();
    }
    print_row({std::to_string(workers), ci_cell(off), ci_cell(on)});
  }

  const double overhead =
      off_mean_w2 > 0.0 ? (1.0 - on_mean_w2 / off_mean_w2) * 100.0 : 0.0;
  std::printf(
      "\n(telemetry=off makes every hook a single null test; the on column\n"
      " adds two steady_clock reads per %zu-key batch plus relaxed sharded\n"
      " adds. measured w=2 ingest overhead: %.2f%% -- the acceptance bar\n"
      " is <3%%.)\n",
      static_cast<std::size_t>(256), overhead);

  std::printf("\n-- health layer on a windowed engine, probes off vs on --\n");
  print_row({"workers", "health off Mpps (95% CI)", "health on Mpps (95% CI)"});
  double hoff_mean_w2 = 0.0;
  double hon_mean_w2 = 0.0;
  for (const std::uint32_t workers : {1u, 2u}) {
    RunningStats hoff;
    RunningStats hon;
    for (int r = 0; r < args.runs; ++r) {
      hoff.add(engine_mpps(keys, workers, true, &reg, args, r,
                           /*windowed=*/true, /*health=*/false));
      hon.add(engine_mpps(keys, workers, true, &reg, args, r,
                          /*windowed=*/true, /*health=*/true));
    }
    if (workers == 2) {
      hoff_mean_w2 = hoff.mean();
      hon_mean_w2 = hon.mean();
    }
    print_row({std::to_string(workers), ci_cell(hoff), ci_cell(hon)});
  }
  const double health_overhead =
      hoff_mean_w2 > 0.0 ? (1.0 - hon_mean_w2 / hoff_mean_w2) * 100.0 : 0.0;
  std::printf(
      "\n(health on = per-rotation backend probes + certificate stamp, the\n"
      " watchdog sampling thread, and one relaxed load per drain pass; off\n"
      " = same windowed engine without them. measured w=2 ingest overhead:\n"
      " %.2f%% -- the acceptance bar is <1%%.)\n",
      health_overhead);
  return 0;
}
