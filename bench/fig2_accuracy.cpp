// Figure 2: accuracy error ratio vs stream length (2D-bytes hierarchy,
// four traces). An accuracy error is a returned HHH candidate whose
// frequency estimate is off by more than eps*N (paper Section 4.1).
//
// Expected shape (paper): RHHH and 10-RHHH start with errors that vanish as
// the stream approaches the convergence bound psi; the deterministic
// algorithms (MST, Partial/Full Ancestry) sit at zero throughout.
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"

using namespace rhhh;
using namespace rhhh::bench;

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  print_figure_header("Figure 2", "Accuracy error ratio vs stream length, 2D bytes",
                      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  std::vector<std::uint64_t> checkpoints;
  for (const double c : {0.2e6, 0.5e6, 1.0e6, 2.0e6, 4.0e6}) {
    checkpoints.push_back(static_cast<std::uint64_t>(c * args.scale));
  }
  const std::uint64_t total = checkpoints.back();

  for (const std::string& trace : trace_preset_names()) {
    const auto& keys = trace_keys(h, trace, total);

    auto roster = paper_roster(h, args.eps, args.delta, args.seed);
    std::printf("\n-- %s --\n", trace.c_str());
    {
      auto* rhhh_alg = dynamic_cast<RhhhSpaceSaving*>(roster[0].get());
      std::printf("psi(RHHH)=%.3g psi(10-RHHH)=%.3g\n", rhhh_alg->psi(),
                  dynamic_cast<RhhhSpaceSaving*>(roster[1].get())->psi());
    }
    std::vector<std::string> head = {"algorithm \\ N"};
    for (const auto cp : checkpoints) head.push_back(fmt(double(cp)));
    print_row(head);

    ExactHhh truth(h);
    std::size_t fed_truth = 0;

    // Feed all algorithms in lockstep so each checkpoint shares ground truth.
    std::vector<std::vector<double>> ratios(roster.size());
    std::size_t fed = 0;
    for (const auto cp : checkpoints) {
      for (; fed < cp; ++fed) {
        for (auto& alg : roster) alg->update(keys[fed]);
      }
      for (; fed_truth < cp; ++fed_truth) truth.add(keys[fed_truth]);
      for (std::size_t a = 0; a < roster.size(); ++a) {
        const HhhSet out = roster[a]->output(args.theta);
        const AccuracyReport rep = accuracy_errors(truth, out, args.eps);
        ratios[a].push_back(rep.ratio());
      }
    }
    for (std::size_t a = 0; a < roster.size(); ++a) {
      std::vector<std::string> row = {std::string(roster[a]->name())};
      for (const double r : ratios[a]) row.push_back(fmt(r));
      print_row(row);
    }
  }
  std::printf("\n(expected shape: randomized rows decay toward 0 as N -> psi;\n"
              " deterministic rows are 0 everywhere)\n");
  return 0;
}
