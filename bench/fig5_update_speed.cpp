// Figure 5: update speed (million updates per second) vs epsilon, six
// panels: {SanJose14, Chicago16} x {1D bytes H=5, 1D bits H=33, 2D bytes
// H=25}; 95% Student-t confidence intervals over repeated runs, as in the
// paper (Section 4.3).
//
// Expected shape: RHHH and 10-RHHH are flat in both eps and H; MST pays a
// factor ~H; the ancestry tries speed UP as eps shrinks (fewer
// compressions) but stay well below RHHH, and degrade with larger H.
// Paper speedups at H=33: up to 21x (RHHH) and 62x (10-RHHH).
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

double mpps_once(HhhAlgorithm& alg, const std::vector<Key128>& keys) {
  alg.clear();
  const double t0 = now_sec();
  for (const Key128& k : keys) alg.update(k);
  const double dt = now_sec() - t0;
  return static_cast<double>(keys.size()) / dt / 1e6;
}

/// Same stream through update_batch in `batch`-sized chunks -- the staged
/// pipeline the engine workers run (byte-identical results by contract).
double mpps_batched_once(HhhAlgorithm& alg, const std::vector<Key128>& keys,
                         std::size_t batch) {
  alg.clear();
  const double t0 = now_sec();
  for (std::size_t i = 0; i < keys.size(); i += batch) {
    alg.update_batch(keys.data() + i, std::min(batch, keys.size() - i));
  }
  const double dt = now_sec() - t0;
  return static_cast<double>(keys.size()) / dt / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  print_figure_header("Figure 5", "Update speed (M packets/s) vs eps", args);

  const std::vector<std::string> traces = {"sanjose14", "chicago16"};
  struct Panel {
    const char* name;
    Hierarchy h;
  };
  std::vector<Panel> panels;
  panels.push_back({"1D Bytes (H=5)", Hierarchy::ipv4_1d(Granularity::kByte)});
  panels.push_back({"1D Bits (H=33)", Hierarchy::ipv4_1d(Granularity::kBit)});
  panels.push_back({"2D Bytes (H=25)", Hierarchy::ipv4_2d(Granularity::kByte)});

  const std::vector<double> eps_values = {0.0003, 0.001, 0.003, 0.01};
  const auto n = static_cast<std::size_t>(400000 * args.scale);

  for (const std::string& trace : traces) {
    for (const Panel& panel : panels) {
      const auto& keys = trace_keys(panel.h, trace, n);
      std::printf("\n-- %s - %s  (M updates/s, 95%% CI over %d runs) --\n",
                  trace.c_str(), panel.name, args.runs);
      std::vector<std::string> head = {"algorithm \\ eps"};
      for (const double e : eps_values) head.push_back(fmt(e));
      head.emplace_back("speedup@min-eps");
      print_row(head);

      std::vector<std::vector<RunningStats>> table;
      std::vector<std::string> names;
      for (const double eps : eps_values) {
        auto roster = paper_roster(panel.h, eps, args.delta, args.seed);
        if (table.empty()) {
          table.resize(roster.size());
          for (const auto& alg : roster) names.emplace_back(alg->name());
        }
        for (std::size_t a = 0; a < roster.size(); ++a) {
          RunningStats s;
          for (int r = 0; r < args.runs; ++r) s.add(mpps_once(*roster[a], keys));
          table[a].push_back(s);
        }
      }
      // Speedup over MST at the smallest eps (the paper's headline ratios).
      const double mst_speed = table[2].front().mean();
      for (std::size_t a = 0; a < table.size(); ++a) {
        std::vector<std::string> row = {names[a]};
        for (const RunningStats& s : table[a]) row.push_back(ci_cell(s));
        row.push_back(xcell(fmt(table[a].front().mean() / mst_speed)));
        print_row(row);
      }
    }
  }
  // Batched pipeline panel (appended so the per-packet sections above keep
  // their row positions for the perf-trajectory gate): the engine's
  // update_batch hot path vs per-packet update() on the 2D-bytes hierarchy.
  // Acceptance: 10-RHHH batched >= 1.3x its per-packet row.
  {
    const Hierarchy h2 = Hierarchy::ipv4_2d(Granularity::kByte);
    const auto& keys = trace_keys(h2, "chicago16", n);
    std::printf("\n-- chicago16 - 2D Bytes, batched update_batch(2048) vs"
                " per-packet (eps=0.001) --\n");
    print_row({"algorithm", "per-packet Mpps", "batched Mpps", "speedup"});
    const struct {
      const char* name;
      std::uint32_t v_mult;
    } cfgs[] = {{"RHHH", 1}, {"10-RHHH", 10}};
    for (const auto& c : cfgs) {
      LatticeParams lp;
      lp.eps = 0.001;
      lp.delta = args.delta;
      lp.seed = args.seed;
      lp.V = c.v_mult * static_cast<std::uint32_t>(h2.size());
      RhhhSpaceSaving alg(h2, LatticeMode::kRhhh, lp);
      RunningStats pp, bt;
      for (int r = 0; r < args.runs; ++r) pp.add(mpps_once(alg, keys));
      for (int r = 0; r < args.runs; ++r) bt.add(mpps_batched_once(alg, keys, 2048));
      print_row({c.name, ci_cell(pp), ci_cell(bt),
                 xcell(fmt(bt.mean() / pp.mean()))});
    }
  }
  std::printf("\n(expected shape: RHHH/10-RHHH flat and fastest; MST ~H times\n"
              " slower; ancestry tries improve slightly at small eps; the\n"
              " batched panel's 10-RHHH speedup should hold >= 1.3x)\n");
  return 0;
}
