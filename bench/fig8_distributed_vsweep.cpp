// Figure 8: distributed implementation throughput vs V (2D bytes): the
// dataplane only draws the level and forwards sampled records over a
// lock-free ring to a measurement thread (the paper's measurement VM).
// Larger V forwards fewer records, raising switch throughput; ring drops
// are reported (a saturated forwarding path).
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"
#include "vswitch/datapath.hpp"
#include "vswitch/distributed.hpp"

using namespace rhhh;
using namespace rhhh::bench;

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  args.eps = 0.001;
  args.delta = 0.001;
  print_figure_header("Figure 8",
                      "Distributed implementation throughput (Mpps) vs V, 2D bytes",
                      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto H = static_cast<std::uint32_t>(h.size());
  const auto n = static_cast<std::size_t>(2e6 * args.scale);
  const auto& packets = trace_packets("chicago16", n);

  print_row({"V", "V/H", "Mpps (95% CI)", "fwd share", "ring drops"});
  for (std::uint32_t mult = 1; mult <= 10; ++mult) {
    LatticeParams lp;
    lp.eps = args.eps;
    lp.delta = args.delta;
    lp.seed = args.seed;
    lp.V = mult * H;
    RunningStats s;
    double fwd_share = 0;
    std::uint64_t drops = 0;
    for (int r = 0; r < args.runs; ++r) {
      DistributedMeasurement dist(h, lp, 1 << 16);
      dist.start();
      Datapath dp;
      dp.set_hook(&dist);
      const double t0 = now_sec();
      dp.run(packets);
      const double dt = now_sec() - t0;
      dist.stop();
      s.add(static_cast<double>(packets.size()) / dt / 1e6);
      fwd_share = static_cast<double>(dist.forwarded() + dist.drops()) /
                  static_cast<double>(dist.offered());
      drops = dist.drops();
    }
    print_row({fmt(double(lp.V)), xcell(std::to_string(mult)), ci_cell(s),
               fmt(fwd_share), fmt(double(drops))});
  }
  std::printf("\n(expected shape: throughput rises with V as the forwarded share\n"
              " falls like H/V; somewhat below the Figure 7 dataplane numbers,\n"
              " as in the paper's 12.3 vs 13.8 Mpps)\n");
  return 0;
}
