// Ablation: sharded-engine ingest throughput vs worker count vs V.
//
// W producer threads feed W worker shards (one HhhEngine, key-hash routing,
// lossless blocking overflow) and we time end-to-end ingest -- from the
// first push until every record has been consumed by a shard lattice. V
// sweeps the paper's performance parameter on top: V = H updates on every
// packet, V = 10H touches only ~10% of them, so the per-shard work drops
// and the ring/transport share grows. Drop, backpressure and epoch
// counters from the final snapshot are part of the table (and the --json
// mirror), so multi-core trajectories are tracked in BENCH_*.json.
#include <cstdio>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "engine/engine.hpp"

using namespace rhhh;
using namespace rhhh::bench;

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  print_figure_header(
      "Engine scaling",
      "Sharded engine aggregate throughput (Mpps) vs workers vs V, 2D bytes",
      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(4e6 * args.scale);
  const std::vector<Key128>& keys = trace_keys(h, "chicago16", n);

  print_row({"workers", "V/H", "Mpps (95% CI)", "drops", "backpressure", "epochs"});
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    for (const std::uint32_t mult : {1u, 10u}) {
      RunningStats s;
      EngineStats last{};
      for (int r = 0; r < args.runs; ++r) {
        EngineConfig cfg;
        cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
        cfg.monitor.algorithm =
            mult == 1 ? AlgorithmKind::kRhhh : AlgorithmKind::kTenRhhh;
        cfg.monitor.eps = args.eps;
        cfg.monitor.delta = args.delta;
        cfg.monitor.seed = args.seed + static_cast<std::uint64_t>(r);
        cfg.workers = workers;
        cfg.producers = workers;
        cfg.ring_capacity = 1 << 16;
        cfg.batch = 256;
        cfg.policy = ShardPolicy::kKeyHash;
        cfg.overflow = OverflowPolicy::kBlock;  // lossless: Mpps counts real work
        const std::unique_ptr<HhhEngine> eng = make_engine(cfg);
        eng->start();

        const double t0 = now_sec();
        std::vector<std::thread> producers;
        for (std::uint32_t p = 0; p < workers; ++p) {
          producers.emplace_back([&, p] {
            HhhEngine::Producer& prod = eng->producer(p);
            const std::size_t lo = keys.size() * p / workers;
            const std::size_t hi = keys.size() * (p + 1) / workers;
            for (std::size_t i = lo; i < hi; ++i) prod.ingest(keys[i]);
            prod.flush();
          });
        }
        for (std::thread& t : producers) t.join();
        eng->stop();  // drains every ring: all n records consumed
        const double dt = now_sec() - t0;
        s.add(static_cast<double>(keys.size()) / dt / 1e6);
        last = eng->snapshot().stats();
      }
      print_row({std::to_string(workers), xcell(std::to_string(mult)),
                 ci_cell(s), std::to_string(last.dropped),
                 std::to_string(last.backpressure_waits),
                 std::to_string(last.epochs)});
    }
  }
  std::printf(
      "\n(expected shape: aggregate Mpps grows with workers while cores last\n"
      " [this host: %u hardware threads]; V = 10H shifts work from the shard\n"
      " lattices to the rings, so it scales further before transport binds)\n",
      std::thread::hardware_concurrency());
  return 0;
}
