#!/usr/bin/env python3
"""Bench trajectory checker: fail CI on throughput regressions.

Diffs a freshly produced BENCH_<name>.json (rhhh-bench-table-v1, the format
bench_common mirrors its tables into) against the same file from a previous
run's uploaded artifact, and exits nonzero when any tracked numeric cell
regressed by more than --max-regress (relative).

Cells are matched positionally per (section, row label, column). Numeric
cells are the leading float of strings like "12.3 +-0.5"; non-numeric cells
(headers, "miss", "x2.1" speedup ratios) are skipped. Direction is
inferred per column from the most recent header row (a row whose data
cells are all non-numeric): latency/size columns -- "... ms", "... us",
"... ns", "memory ...", trailing "MB" -- regress when they GROW, while
everything else (Mpps, win/s, MB/s, counts: the default) regresses when it
drops, so rate and latency panels of one bench gate together.

A missing previous baseline (first run on a branch, expired artifact) is a
pass with a notice -- the checker bootstraps itself from the next upload.

--bench is repeatable and takes an optional per-bench threshold
(`NAME=0.35`), because run-to-run noise differs per bench: fig5 is a tight
single-threaded loop (15% catches real regressions), while the engine
scaling sweep schedules producer/worker threads on shared CI runners and
needs a wider gate on top of the per-cell CI guard.

Usage:
  check_trajectory.py --current DIR --previous DIR
                      [--bench fig5_update_speed [--bench NAME[=MAXREG] ...]]
                      [--max-regress 0.15] [--min-value 0.1]
"""

import argparse
import json
import pathlib
import re
import sys

NUM_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)(\s|$)")
HALF_RE = re.compile(r"\+-\s*([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)")
# Column headers naming a duration or a footprint gate in the opposite
# direction: growth is the regression. "MB/s", "win/s", "Mpps" etc. keep
# the higher-is-better default ("MB" only matches at the end of the
# header, so rates with a /s suffix never flip).
LOWER_BETTER_RE = re.compile(r"\b(ms|us|ns)\b|\bmemory\b|\bMB$")


def leading_number(cell):
    """(mean, ci_half) of a table cell, or None for non-numeric cells.

    bench_common's ci_cell prints "mean +-half" (half = 95% Student-t
    half-width over the runs); single-run cells are a bare mean (half 0).
    """
    m = NUM_RE.match(cell)
    if not m:
        return None
    h = HALF_RE.search(cell)
    return float(m.group(1)), float(h.group(1)) if h else 0.0


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rhhh-bench-table-v1":
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def index_rows(doc):
    """({(section, label, occurrence, col): value}, {lower-better keys}).

    A section can hold several stacked panels (fig5 prints one table per
    trace x hierarchy), so the same row label recurs; the occurrence index
    keeps those rows distinct instead of silently keeping only the last.

    Rows whose data cells are all non-numeric are header rows: they carry
    no values but set each column's direction (LOWER_BETTER_RE) for the
    data rows beneath them, until the next header row.
    """
    cells = {}
    lower = set()
    seen = {}
    for s, section in enumerate(doc.get("sections", [])):
        header = []
        for row in section.get("rows", []):
            if not row:
                continue
            data = row[1:]
            if data and all(leading_number(c) is None for c in data):
                header = row
                continue
            label = row[0]
            occ = seen.get((s, label), 0)
            seen[(s, label)] = occ + 1
            for c, cell in enumerate(data, start=1):
                v = leading_number(cell)
                if v is None:
                    continue
                cells[(s, label, occ, c)] = v
                if c < len(header) and LOWER_BETTER_RE.search(header[c]):
                    lower.add((s, label, occ, c))
    return cells, lower


def check_bench(bench, max_regress, args):
    """Diffs one bench; returns 0/1 exactly like the old single-bench main."""
    name = f"BENCH_{bench}.json"
    cur_path = pathlib.Path(args.current) / name
    prev_path = pathlib.Path(args.previous) / name
    if not cur_path.exists():
        raise SystemExit(f"current results missing: {cur_path}")
    if not prev_path.exists():
        print(f"{bench}: no previous baseline at {prev_path} -- nothing to "
              "diff, passing")
        return 0

    cur_doc, prev_doc = load(cur_path), load(prev_path)
    # Different sweep parameters are not comparable runs; don't false-alarm.
    for p in ("scale", "runs", "eps", "theta"):
        if cur_doc.get("params", {}).get(p) != prev_doc.get("params", {}).get(p):
            print(f"{bench}: params differ ({p}: {prev_doc['params'].get(p)} -> "
                  f"{cur_doc['params'].get(p)}) -- baselines not comparable, "
                  "passing")
            return 0

    (cur, _), (prev, prev_lower) = index_rows(cur_doc), index_rows(prev_doc)
    compared = 0
    failures = []
    for key, (old, old_half) in prev.items():
        hit = cur.get(key)
        if hit is None or old < args.min_value:
            continue
        new, new_half = hit
        compared += 1
        # Latency/footprint columns regress when they grow; rates and
        # counts (the default) when they drop. Either way `drop` is the
        # relative move in the bad direction.
        if key in prev_lower:
            drop, verb = (new - old) / old, "grew"
        else:
            drop, verb = (old - new) / old, "drop"
        # A real regression must clear the relative threshold AND the two
        # measurements' combined 95% half-widths -- multi-run cells carry
        # their own noise estimate, so a wide-CI cell (shared CI runners,
        # cold-cache first column) cannot flap the gate by itself.
        if drop > max_regress and abs(old - new) > old_half + new_half:
            s, label, occ, c = key
            figure = prev_doc["sections"][s].get("figure", f"section {s}")
            failures.append(
                f"  {figure} / {label} #{occ} [col {c}]: {old:g}+-{old_half:g} "
                f"-> {new:g}+-{new_half:g} "
                f"({drop:.1%} {verb} > {max_regress:.0%})")

    print(f"{bench}: compared {compared} cells against {prev_path}")
    if compared == 0 and not args.allow_empty:
        # A baseline exists but nothing matched: the table was reshaped or
        # rows renamed, and a silent pass would turn the gate into a no-op.
        print(f"ERROR: {bench}: zero comparable cells -- row labels or "
              "sections changed? Re-run with --allow-empty for an intentional "
              "reshape (the next upload re-seeds the baseline).")
        return 1
    if failures:
        print(f"REGRESSION: {bench}: {len(failures)} cell(s) regressed "
              f"beyond {max_regress:.0%}:")
        print("\n".join(failures))
        return 1
    print(f"{bench}: no regression beyond the threshold")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True, help="dir with this run's BENCH_*.json")
    ap.add_argument("--previous", required=True, help="dir with the prior artifact")
    ap.add_argument("--bench", action="append", default=None,
                    help="bench to diff, optionally NAME=MAXREG for a "
                         "per-bench threshold; repeatable "
                         "(default: fig5_update_speed)")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="relative drop that fails the job (default 0.15)")
    ap.add_argument("--min-value", type=float, default=0.1,
                    help="ignore cells below this (noise floor, default 0.1)")
    ap.add_argument("--allow-empty", action="store_true",
                    help="pass even when no cells match the baseline (escape "
                         "hatch for intentional table reshapes)")
    args = ap.parse_args()

    benches = args.bench or ["fig5_update_speed"]
    rc = 0
    for spec in benches:
        name, _, thresh = spec.partition("=")
        max_regress = float(thresh) if thresh else args.max_regress
        rc |= check_bench(name, max_regress, args)
    return rc


if __name__ == "__main__":
    sys.exit(main())
