#include "common/bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

namespace rhhh::bench {

Args Args::parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--scale") {
      a.scale = std::atof(next());
    } else if (flag == "--runs") {
      a.runs = std::atoi(next());
    } else if (flag == "--eps") {
      a.eps = std::atof(next());
    } else if (flag == "--delta") {
      a.delta = std::atof(next());
    } else if (flag == "--theta") {
      a.theta = std::atof(next());
    } else if (flag == "--seed") {
      a.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (flag == "--json") {
      a.json = next();
    } else if (flag == "--help" || flag == "-h") {
      std::printf(
          "options: --scale F (stream length multiplier, default 1)\n"
          "         --runs N --eps E --delta D --theta T --seed S\n"
          "         --json PATH (also write tables as machine-readable JSON)\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      std::exit(2);
    }
  }
  if (!a.json.empty()) {
    std::string bench = argv[0];
    const auto slash = bench.find_last_of('/');
    if (slash != std::string::npos) bench = bench.substr(slash + 1);
    json_begin(a.json, bench, a);
  }
  return a;
}

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

namespace {

std::map<std::string, std::vector<PacketRecord>>& packet_cache() {
  static std::map<std::string, std::vector<PacketRecord>> cache;
  return cache;
}

// ------------------------------------------------------ JSON mirror ----
//
// Benches keep printing their paper-style tables; when --json is given the
// same figure headers and rows are mirrored here and serialized on exit, so
// run_all can diff BENCH_<name>.json across PRs without scraping stdout.

struct JsonSection {
  std::string figure;
  std::string caption;
  std::vector<std::vector<std::string>> rows;
};

struct JsonRecorder {
  bool active = false;
  bool written = false;
  std::string path;
  std::string bench;
  Args params;
  std::vector<JsonSection> sections;
};

JsonRecorder& recorder() {
  static JsonRecorder r;
  return r;
}

// %g prints bare "inf"/"nan", which is not JSON; map non-finite to null.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void json_begin(const std::string& path, const std::string& bench,
                const Args& args) {
  JsonRecorder& r = recorder();
  r.active = true;
  r.written = false;
  r.path = path;
  r.bench = bench;
  r.params = args;
  r.sections.clear();
  std::atexit(json_flush);
}

void json_flush() {
  JsonRecorder& r = recorder();
  if (!r.active || r.written) return;
  std::FILE* f = std::fopen(r.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", r.path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"rhhh-bench-table-v1\",\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", json_escape(r.bench).c_str());
  std::fprintf(f,
               "  \"params\": {\"scale\": %s, \"runs\": %d, \"eps\": %s, "
               "\"delta\": %s, \"theta\": %s, \"seed\": %llu},\n",
               json_num(r.params.scale).c_str(), r.params.runs,
               json_num(r.params.eps).c_str(), json_num(r.params.delta).c_str(),
               json_num(r.params.theta).c_str(),
               static_cast<unsigned long long>(r.params.seed));
  std::fprintf(f, "  \"sections\": [");
  for (std::size_t s = 0; s < r.sections.size(); ++s) {
    const JsonSection& sec = r.sections[s];
    std::fprintf(f, "%s\n    {\"figure\": \"%s\", \"caption\": \"%s\", \"rows\": [",
                 s == 0 ? "" : ",", json_escape(sec.figure).c_str(),
                 json_escape(sec.caption).c_str());
    for (std::size_t i = 0; i < sec.rows.size(); ++i) {
      std::fprintf(f, "%s\n      [", i == 0 ? "" : ",");
      for (std::size_t j = 0; j < sec.rows[i].size(); ++j) {
        std::fprintf(f, "%s\"%s\"", j == 0 ? "" : ", ",
                     json_escape(sec.rows[i][j]).c_str());
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "\n    ]}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  r.written = true;
}

const std::vector<PacketRecord>& trace_packets(const std::string& preset,
                                               std::size_t n) {
  auto& slot = packet_cache()[preset];
  if (slot.size() < n) {
    TraceGenerator gen(trace_preset(preset));
    slot = gen.generate(n);
  }
  return slot;
}

const std::vector<Key128>& trace_keys(const Hierarchy& h, const std::string& preset,
                                      std::size_t n) {
  // Key caches are per (preset, dims) since the mapping differs.
  static std::map<std::string, std::vector<Key128>> cache;
  const std::string id = preset + "/" + std::to_string(h.dims());
  auto& slot = cache[id];
  if (slot.size() < n) {
    const auto& packets = trace_packets(preset, n);
    slot.clear();
    slot.reserve(n);
    for (std::size_t i = 0; i < n; ++i) slot.push_back(h.key_of(packets[i]));
  }
  return slot;
}

std::vector<std::unique_ptr<HhhAlgorithm>> paper_roster(const Hierarchy& h,
                                                        double eps, double delta,
                                                        std::uint64_t seed) {
  LatticeParams lp;
  lp.eps = eps;
  lp.delta = delta;
  lp.seed = seed;
  std::vector<std::unique_ptr<HhhAlgorithm>> out;
  out.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp));
  LatticeParams lp10 = lp;
  lp10.V = 10 * static_cast<std::uint32_t>(h.size());
  out.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp10));
  out.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kMst, lp));
  out.push_back(std::make_unique<TrieHhh>(h, AncestryMode::kPartial, eps));
  out.push_back(std::make_unique<TrieHhh>(h, AncestryMode::kFull, eps));
  return out;
}

void print_figure_header(const std::string& figure, const std::string& caption,
                         const Args& args) {
  if (recorder().active) recorder().sections.push_back({figure, caption, {}});
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", figure.c_str(), caption.c_str());
  std::printf("params: eps=%g delta=%g theta=%g runs=%d scale=%g\n",
              args.eps, args.delta, args.theta, args.runs, args.scale);
  std::printf("================================================================\n");
}

std::string ci_cell(const RunningStats& stats) {
  const Interval ci = stats.mean_ci(0.95);
  const double half = 0.5 * ci.width();
  char buf[64];
  if (stats.count() < 2) {
    std::snprintf(buf, sizeof buf, "%s", fmt(stats.mean()).c_str());
  } else {
    std::snprintf(buf, sizeof buf, "%s +-%s", fmt(stats.mean()).c_str(),
                  fmt(half).c_str());
  }
  return buf;
}

void print_row(const std::vector<std::string>& cells) {
  JsonRecorder& r = recorder();
  if (r.active) {
    if (r.sections.empty()) r.sections.push_back({"", "", {}});
    r.sections.back().rows.push_back(cells);
  }
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, i == 0 ? "%-26s" : "%16s", cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

std::string xcell(const std::string& suffix) {
  std::string cell("x");
  cell += suffix;
  return cell;
}

std::string fmt(double v) {
  char buf[48];
  const double av = v < 0 ? -v : v;
  if (v == 0.0) {
    return "0";
  } else if (av >= 1e6 || av < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else if (av >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

}  // namespace rhhh::bench
