#include "common/bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

namespace rhhh::bench {

Args Args::parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--scale") {
      a.scale = std::atof(next());
    } else if (flag == "--runs") {
      a.runs = std::atoi(next());
    } else if (flag == "--eps") {
      a.eps = std::atof(next());
    } else if (flag == "--delta") {
      a.delta = std::atof(next());
    } else if (flag == "--theta") {
      a.theta = std::atof(next());
    } else if (flag == "--seed") {
      a.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (flag == "--help" || flag == "-h") {
      std::printf(
          "options: --scale F (stream length multiplier, default 1)\n"
          "         --runs N --eps E --delta D --theta T --seed S\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      std::exit(2);
    }
  }
  return a;
}

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

namespace {

std::map<std::string, std::vector<PacketRecord>>& packet_cache() {
  static std::map<std::string, std::vector<PacketRecord>> cache;
  return cache;
}

}  // namespace

const std::vector<PacketRecord>& trace_packets(const std::string& preset,
                                               std::size_t n) {
  auto& slot = packet_cache()[preset];
  if (slot.size() < n) {
    TraceGenerator gen(trace_preset(preset));
    slot = gen.generate(n);
  }
  return slot;
}

const std::vector<Key128>& trace_keys(const Hierarchy& h, const std::string& preset,
                                      std::size_t n) {
  // Key caches are per (preset, dims) since the mapping differs.
  static std::map<std::string, std::vector<Key128>> cache;
  const std::string id = preset + "/" + std::to_string(h.dims());
  auto& slot = cache[id];
  if (slot.size() < n) {
    const auto& packets = trace_packets(preset, n);
    slot.clear();
    slot.reserve(n);
    for (std::size_t i = 0; i < n; ++i) slot.push_back(h.key_of(packets[i]));
  }
  return slot;
}

std::vector<std::unique_ptr<HhhAlgorithm>> paper_roster(const Hierarchy& h,
                                                        double eps, double delta,
                                                        std::uint64_t seed) {
  LatticeParams lp;
  lp.eps = eps;
  lp.delta = delta;
  lp.seed = seed;
  std::vector<std::unique_ptr<HhhAlgorithm>> out;
  out.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp));
  LatticeParams lp10 = lp;
  lp10.V = 10 * static_cast<std::uint32_t>(h.size());
  out.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp10));
  out.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kMst, lp));
  out.push_back(std::make_unique<TrieHhh>(h, AncestryMode::kPartial, eps));
  out.push_back(std::make_unique<TrieHhh>(h, AncestryMode::kFull, eps));
  return out;
}

void print_figure_header(const std::string& figure, const std::string& caption,
                         const Args& args) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", figure.c_str(), caption.c_str());
  std::printf("params: eps=%g delta=%g theta=%g runs=%d scale=%g\n",
              args.eps, args.delta, args.theta, args.runs, args.scale);
  std::printf("================================================================\n");
}

std::string ci_cell(const RunningStats& stats) {
  const Interval ci = stats.mean_ci(0.95);
  const double half = 0.5 * ci.width();
  char buf[64];
  if (stats.count() < 2) {
    std::snprintf(buf, sizeof buf, "%s", fmt(stats.mean()).c_str());
  } else {
    std::snprintf(buf, sizeof buf, "%s +-%s", fmt(stats.mean()).c_str(),
                  fmt(half).c_str());
  }
  return buf;
}

void print_row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, i == 0 ? "%-26s" : "%16s", cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

std::string fmt(double v) {
  char buf[48];
  const double av = v < 0 ? -v : v;
  if (v == 0.0) {
    return "0";
  } else if (av >= 1e6 || av < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else if (av >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

}  // namespace rhhh::bench
