// Shared benchmark harness: argument parsing, trace/key caching, the
// standard algorithm roster the paper compares (RHHH, 10-RHHH, MST,
// Partial/Full Ancestry), timing, and paper-style table printing with 95%
// Student-t confidence intervals (the paper's methodology: Section 4).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "hhh/lattice_hhh.hpp"
#include "hhh/trie_hhh.hpp"
#include "stats/summary.hpp"
#include "trace/trace_gen.hpp"

namespace rhhh::bench {

/// Common CLI arguments. Every bench binary runs with sensible defaults when
/// invoked with no arguments; --scale multiplies stream lengths to approach
/// paper scale (--scale 100 on the figure benches roughly reproduces the
/// paper's 10^9-packet setting, given time).
struct Args {
  double scale = 1.0;   ///< multiplies default stream lengths
  int runs = 3;         ///< repetitions per data point (paper uses 5)
  double eps = 0.01;    ///< accuracy parameter (paper: 0.001 at 10^9 packets)
  double delta = 0.001; ///< confidence parameter
  double theta = 0.02;  ///< HHH threshold (paper: 0.01..0.1)
  std::uint64_t seed = 1;
  std::string json;     ///< if non-empty, mirror printed tables to this file

  static Args parse(int argc, char** argv);
};

/// Starts mirroring every print_figure_header()/print_row() call into an
/// in-memory document written to `path` as JSON when the process exits (or
/// when json_flush() is called). Args::parse wires this up for `--json PATH`;
/// the run_all driver uses it to collect BENCH_<name>.json baselines.
void json_begin(const std::string& path, const std::string& bench, const Args& args);

/// Writes the mirrored document now (idempotent; also runs atexit).
void json_flush();

/// Monotonic seconds.
[[nodiscard]] double now_sec();

/// Fully-specified keys of a preset trace, mapped through `h` (cached per
/// process so several panels over the same trace generate once).
[[nodiscard]] const std::vector<Key128>& trace_keys(const Hierarchy& h,
                                                    const std::string& preset,
                                                    std::size_t n);

/// Raw packets of a preset trace (cached).
[[nodiscard]] const std::vector<PacketRecord>& trace_packets(const std::string& preset,
                                                             std::size_t n);

/// The paper's evaluated algorithm roster, in its plotting order.
[[nodiscard]] std::vector<std::unique_ptr<HhhAlgorithm>> paper_roster(
    const Hierarchy& h, double eps, double delta, std::uint64_t seed);

/// Prints "## <title>" plus a parameter line, mirroring figure captions.
void print_figure_header(const std::string& figure, const std::string& caption,
                         const Args& args);

/// One formatted cell "mean +-half" from repeated observations.
[[nodiscard]] std::string ci_cell(const RunningStats& stats);

/// Simple fixed-width row printer: first column 24 chars, rest 14.
void print_row(const std::vector<std::string>& cells);

/// Formats a double compactly (3 significant digits, engineering-friendly).
[[nodiscard]] std::string fmt(double v);

/// "x<suffix>" ratio cell, append-built: the natural `"x" + suffix` trips
/// GCC 12's -Wrestrict false positive (PR105329) at -O3.
[[nodiscard]] std::string xcell(const std::string& suffix);

}  // namespace rhhh::bench
