// Ablation: the batched hot-path update pipeline.
//
// LatticeHhh::update_batch stages each popped batch through three passes --
// block-RNG (every draw for the batch in one tight Lemire-bounded loop),
// survivor compaction (keep only d < H), and a prefetched apply loop that
// walks survivors with the backend's hash/probe split -- while remaining
// byte-identical to per-packet update() (tests/test_batch.cpp pins this).
// This bench isolates where the speedup comes from and what it costs:
//
//   * batch size sweep: per-packet baseline vs update_batch at growing
//     batch sizes (amortization of the RNG pass and the survivor list).
//   * prefetch distance sweep: the apply-loop lookahead at a fixed batch
//     size, including 0 (prefetching disabled -- isolates block-RNG +
//     compaction from memory-level parallelism).
//   * mode x backend panel: batched speedup across lattice modes and the
//     three pipelined backends. 10-RHHH is the paper's deployment point:
//     ~9/10 packets die in compaction, so the apply loop sees a dense
//     stream of real work.
//
// The "speedup" column is the acceptance metric: 10-RHHH batched over
// per-packet must hold >= 1.3x single-core.
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_common.hpp"
#include "hh/count_min.hpp"
#include "hh/count_sketch.hpp"
#include "hhh/lattice_hhh.hpp"
#include "util/random.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

/// One pass over `keys`; batch = 0 means the per-packet update() path,
/// otherwise update_batch in `batch`-sized chunks.
template <class Backend>
void feed(LatticeHhh<Backend>& alg, const std::vector<Key128>& keys,
          std::size_t batch) {
  if (batch == 0) {
    for (const Key128& k : keys) alg.update(k);
  } else {
    for (std::size_t i = 0; i < keys.size(); i += batch) {
      alg.update_batch(keys.data() + i, std::min(batch, keys.size() - i));
    }
  }
}

/// Mpps over `runs` timed passes of one lattice instance: construct once,
/// warm the counter arrays with an untimed quarter-pass, then clear + time
/// (clear() keeps the allocations, so runs measure steady state, not page
/// faults).
template <class Backend>
RunningStats measure(const Hierarchy& h, LatticeMode mode, LatticeParams lp,
                     const std::vector<Key128>& keys, std::size_t batch,
                     int runs, std::uint64_t seed) {
  lp.seed = seed;
  LatticeHhh<Backend> alg(h, mode, lp);
  const std::vector<Key128> warm(keys.begin(),
                                 keys.begin() + static_cast<std::ptrdiff_t>(
                                                    keys.size() / 4));
  feed(alg, warm, batch);
  RunningStats s;
  for (int r = 0; r < runs; ++r) {
    alg.clear();
    const double t0 = now_sec();
    feed(alg, keys, batch);
    const double dt = now_sec() - t0;
    if (alg.stream_length() != keys.size()) std::printf("?");  // keep alg alive
    s.add(static_cast<double>(keys.size()) / dt / 1e6);
  }
  return s;
}

std::string speedup_cell(const RunningStats& b, const RunningStats& base) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", b.mean() / base.mean());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  print_figure_header(
      "Batch pipeline",
      "update_batch staged pipeline: batch size, prefetch distance, mode x backend",
      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(8e6 * args.scale);
  const std::vector<Key128>& keys = trace_keys(h, "chicago16", n);

  LatticeParams lp;
  // Pin eps to fig5's paper-scale operating point: at loose eps the
  // counter arrays are L1-resident and the prefetch stage has nothing to
  // hide, which would understate the pipeline the engine actually runs.
  lp.eps = 0.001;
  lp.delta = args.delta;
  lp.V = 10 * static_cast<std::uint32_t>(h.size());  // 10-RHHH

  std::printf("\n-- batch size, 10-RHHH / Space-Saving, 2D bytes (0 = per-packet) --\n");
  print_row({"batch", "Mpps (95% CI)", "speedup"});
  const RunningStats base = measure<SpaceSaving<Key128>>(
      h, LatticeMode::kRhhh, lp, keys, 0, args.runs, args.seed);
  print_row({"per-packet", ci_cell(base), "1.00x"});
  for (const std::size_t batch : {32u, 256u, 2048u, 16384u}) {
    const RunningStats s = measure<SpaceSaving<Key128>>(
        h, LatticeMode::kRhhh, lp, keys, batch, args.runs, args.seed);
    print_row({std::to_string(batch), ci_cell(s), speedup_cell(s, base)});
  }

  std::printf("\n-- prefetch distance, 10-RHHH / Space-Saving, batch 2048 --\n");
  print_row({"distance", "Mpps (95% CI)", "speedup vs per-packet"});
  for (const std::uint32_t dist : {0u, 2u, 4u, 8u, 16u, 32u}) {
    LatticeParams dlp = lp;
    dlp.prefetch_distance = dist;
    const RunningStats s = measure<SpaceSaving<Key128>>(
        h, LatticeMode::kRhhh, dlp, keys, 2048, args.runs, args.seed);
    print_row({std::to_string(dist), ci_cell(s), speedup_cell(s, base)});
  }

  std::printf("\n-- mode x backend, batch 2048 vs per-packet --\n");
  print_row({"config", "per-packet Mpps", "batched Mpps", "speedup"});
  const struct {
    const char* name;
    LatticeMode mode;
    std::uint32_t v_mult;
  } modes[] = {
      {"RHHH (V=H)", LatticeMode::kRhhh, 1},
      {"10-RHHH", LatticeMode::kRhhh, 10},
      {"MST", LatticeMode::kMst, 1},
      {"Sampled-MST (V=10H)", LatticeMode::kSampledMst, 10},
  };
  for (const auto& m : modes) {
    LatticeParams mlp = lp;
    mlp.V = m.v_mult * static_cast<std::uint32_t>(h.size());
    const RunningStats pp = measure<SpaceSaving<Key128>>(
        h, m.mode, mlp, keys, 0, args.runs, args.seed);
    const RunningStats bt = measure<SpaceSaving<Key128>>(
        h, m.mode, mlp, keys, 2048, args.runs, args.seed);
    print_row({std::string("SpaceSaving/") + m.name, ci_cell(pp), ci_cell(bt),
               speedup_cell(bt, pp)});
  }
  {
    const RunningStats pp = measure<CountMinHh<Key128>>(
        h, LatticeMode::kRhhh, lp, keys, 0, args.runs, args.seed);
    const RunningStats bt = measure<CountMinHh<Key128>>(
        h, LatticeMode::kRhhh, lp, keys, 2048, args.runs, args.seed);
    print_row({"CountMin/10-RHHH", ci_cell(pp), ci_cell(bt), speedup_cell(bt, pp)});
  }
  {
    const RunningStats pp = measure<CountSketchHh<Key128>>(
        h, LatticeMode::kRhhh, lp, keys, 0, args.runs, args.seed);
    const RunningStats bt = measure<CountSketchHh<Key128>>(
        h, LatticeMode::kRhhh, lp, keys, 2048, args.runs, args.seed);
    print_row({"CountSketch/10-RHHH", ci_cell(pp), ci_cell(bt), speedup_cell(bt, pp)});
  }

  std::printf(
      "\n(expected shape: speedup grows with batch size and saturates once\n"
      " the block-RNG pass amortizes -- ~2048 is plenty; distance 0 shows\n"
      " the pipeline's non-prefetch share, with the gap to ~8 the\n"
      " memory-level-parallelism win; 10-RHHH gains the most because\n"
      " compaction deletes ~9/10 packets before any backend work, while MST\n"
      " gains least -- every packet updates all H nodes either way, so only\n"
      " prefetching helps. Acceptance: 10-RHHH batched >= 1.3x per-packet.)\n");
  return 0;
}
