// Figure 4: false-positive ratio vs stream length, six panels:
// {SanJose14, Chicago16} x {1D bytes, 1D bits, 2D bytes}.
// FP ratio = |returned \ exactHHH| / |returned| (paper Section 4.2),
// measured for eps and theta scaled per DESIGN.md.
//
// Expected shape: RHHH/10-RHHH start high (the 2Z*sqrt(NV) slack dominates
// small N) and drop toward the deterministic algorithms' level once the
// trace passes psi; deterministic algorithms have a roughly flat, low rate
// coming only from conservative bound slack.
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"

using namespace rhhh;
using namespace rhhh::bench;

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  print_figure_header("Figure 4", "False positive ratio vs stream length", args);

  const std::vector<std::string> traces = {"sanjose14", "chicago16"};
  struct Panel {
    const char* name;
    Hierarchy h;
  };
  std::vector<Panel> panels;
  panels.push_back({"1D Bytes (H=5)", Hierarchy::ipv4_1d(Granularity::kByte)});
  panels.push_back({"1D Bits (H=33)", Hierarchy::ipv4_1d(Granularity::kBit)});
  panels.push_back({"2D Bytes (H=25)", Hierarchy::ipv4_2d(Granularity::kByte)});

  std::vector<std::uint64_t> checkpoints;
  for (const double c : {0.2e6, 0.5e6, 1.0e6, 2.0e6, 4.0e6}) {
    checkpoints.push_back(static_cast<std::uint64_t>(c * args.scale));
  }
  const std::uint64_t total = checkpoints.back();

  for (const std::string& trace : traces) {
    for (const Panel& panel : panels) {
      const auto& keys = trace_keys(panel.h, trace, total);
      auto roster = paper_roster(panel.h, args.eps, args.delta, args.seed);

      std::printf("\n-- %s - %s --\n", trace.c_str(), panel.name);
      std::vector<std::string> head = {"algorithm \\ N"};
      for (const auto cp : checkpoints) head.push_back(fmt(double(cp)));
      print_row(head);

      ExactHhh truth(panel.h);
      std::size_t fed = 0;
      std::size_t fed_truth = 0;
      std::vector<std::vector<double>> fp(roster.size());
      std::vector<std::vector<double>> recall(roster.size());
      for (const auto cp : checkpoints) {
        for (; fed < cp; ++fed) {
          for (auto& alg : roster) alg->update(keys[fed]);
        }
        for (; fed_truth < cp; ++fed_truth) truth.add(keys[fed_truth]);
        const HhhSet exact = truth.compute(args.theta);
        for (std::size_t a = 0; a < roster.size(); ++a) {
          const FalsePositiveReport rep =
              false_positives(exact, roster[a]->output(args.theta));
          fp[a].push_back(rep.ratio());
          recall[a].push_back(rep.recall());
        }
      }
      for (std::size_t a = 0; a < roster.size(); ++a) {
        std::vector<std::string> row = {std::string(roster[a]->name())};
        for (const double r : fp[a]) row.push_back(fmt(r));
        print_row(row);
      }
      std::printf("   (recall of exact HHH set, same order)\n");
      for (std::size_t a = 0; a < roster.size(); ++a) {
        std::vector<std::string> row = {std::string(roster[a]->name())};
        for (const double r : recall[a]) row.push_back(fmt(r));
        print_row(row);
      }
    }
  }
  std::printf("\n(expected shape: randomized FP ratios decrease with N and meet\n"
              " the deterministic algorithms' level near psi)\n");
  return 0;
}
