#!/usr/bin/env bash
# Runs the whole bench roster and writes one machine-readable JSON file per
# bench — BENCH_<name>.json — plus a .log with the human-readable table.
# This is the perf-trajectory baseline: run it before and after a change and
# diff the JSON.
#
# Usage:
#   bench/run_all.sh --bin-dir build/bench --out-dir build/bench_results \
#                    [--scale F] [--runs N] [--only substr]
#
# Defaults keep a full sweep to a few minutes; raise --scale toward 1 (the
# benches' own default) or beyond (--scale 100 approaches the paper's 10^9
# packet setting) for publishable numbers. Env vars SCALE/RUNS also work.
set -u

BIN_DIR=.
OUT_DIR=bench_results
SCALE="${SCALE:-0.1}"
RUNS="${RUNS:-2}"
ONLY=""

while [ $# -gt 0 ]; do
  case "$1" in
    --bin-dir) BIN_DIR="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    --scale)   SCALE="$2";   shift 2 ;;
    --runs)    RUNS="$2";    shift 2 ;;
    --only)    ONLY="$2";    shift 2 ;;
    -h|--help) grep '^#' "$0" | tail -n +2 | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "unknown argument: $1 (try --help)" >&2; exit 2 ;;
  esac
done

TABLE_BENCHES="fig2_accuracy fig3_coverage fig4_false_positives
fig5_update_speed fig6_ovs_throughput fig7_dataplane_vsweep
fig8_distributed_vsweep ablation_backends ablation_batch_pipeline
ablation_convergence
ablation_engine_scaling ablation_hierarchy_scaling ablation_latency_tail
ablation_obs_overhead ablation_store_io ablation_trend_depth
ablation_window_scaling"
GBENCH_BENCHES="micro_update"

mkdir -p "$OUT_DIR"
failures=0
ran=0

check_json() {
  # Validate that the bench actually produced parseable JSON.
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$1" >/dev/null || return 1
  fi
  [ -s "$1" ]
}

run_one() {
  local name="$1"; shift
  local out="$OUT_DIR/BENCH_$name.json"
  if [ -n "$ONLY" ] && [ "${name#*"$ONLY"}" = "$name" ]; then
    return 0
  fi
  if [ ! -x "$BIN_DIR/$name" ]; then
    echo "-- skip $name (binary not built)"
    return 0
  fi
  # A leftover file from a previous sweep must not pass check_json when this
  # run's bench fails to write its own.
  rm -f "$out"
  echo "== $name"
  ran=$((ran + 1))
  if "$BIN_DIR/$name" "$@" >"$OUT_DIR/$name.log" 2>&1 && check_json "$out"; then
    echo "   ok: $out"
  else
    echo "   FAILED: see $OUT_DIR/$name.log" >&2
    failures=$((failures + 1))
  fi
}

for b in $GBENCH_BENCHES; do
  run_one "$b" \
    --benchmark_out="$OUT_DIR/BENCH_$b.json" --benchmark_out_format=json \
    --benchmark_min_time=0.05
done

for b in $TABLE_BENCHES; do
  run_one "$b" --scale "$SCALE" --runs "$RUNS" --json "$OUT_DIR/BENCH_$b.json"
done

echo
echo "ran $ran benches, $failures failed; results in $OUT_DIR"
[ "$failures" -eq 0 ]
