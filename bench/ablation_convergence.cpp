// Ablation: convergence behaviour around psi (Theorems 6.3/6.17 and the
// Section 7 discussion: "even after as little as 8 million packets, the
// error reduces to around 1%"), plus the Corollary 6.8 multi-update
// variant: r independent updates per packet converge r times faster.
//
// Reported: mean relative frequency-estimation error over the exact top
// HHH prefixes, as N grows through psi, for RHHH (r = 1, 2, 4) and 10-RHHH.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"

using namespace rhhh;
using namespace rhhh::bench;

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  print_figure_header("Ablation: convergence & multi-update (Cor. 6.8)",
                      "mean relative estimation error vs N, 2D bytes, chicago16",
                      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  std::vector<std::uint64_t> checkpoints;
  for (const double c : {0.1e6, 0.25e6, 0.5e6, 1.0e6, 2.0e6, 4.0e6}) {
    checkpoints.push_back(static_cast<std::uint64_t>(c * args.scale));
  }
  const std::uint64_t total = checkpoints.back();
  const auto& keys = trace_keys(h, "chicago16", total);

  struct Config {
    std::string label;
    std::uint32_t V;
    std::uint32_t r;
  };
  const auto H = static_cast<std::uint32_t>(h.size());
  const std::vector<Config> configs = {
      {"RHHH (r=1)", H, 1},
      {"RHHH (r=2)", H, 2},
      {"RHHH (r=4)", H, 4},
      {"10-RHHH", 10 * H, 1},
  };

  std::vector<std::unique_ptr<RhhhSpaceSaving>> algs;
  for (const Config& c : configs) {
    LatticeParams lp;
    lp.eps = args.eps;
    lp.delta = args.delta;
    lp.seed = args.seed;
    lp.V = c.V;
    lp.r = c.r;
    algs.push_back(std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp));
  }

  std::vector<std::string> head = {"config \\ N"};
  for (const auto cp : checkpoints) head.push_back(fmt(double(cp)));
  head.emplace_back("psi");
  print_row(head);

  // Ground truth grows with the stream so each checkpoint is judged against
  // the exact frequencies *at that point in time*. The error metric tracks
  // a fixed yardstick -- every prefix with exact f >= theta*N -- so the
  // sampling noise sqrt(V/N) is visible regardless of what each algorithm
  // chooses to return.
  ExactHhh truth(h);
  std::vector<std::vector<double>> err(configs.size());
  std::size_t fed = 0;
  std::size_t fed_truth = 0;
  for (const auto cp : checkpoints) {
    for (; fed < cp; ++fed) {
      for (auto& alg : algs) alg->update(keys[fed]);
    }
    for (; fed_truth < cp; ++fed_truth) truth.add(keys[fed_truth]);
    const std::vector<Prefix> heavy = truth.heavy_prefixes(args.theta);
    const std::vector<std::uint64_t> f = truth.frequencies(heavy);
    for (std::size_t a = 0; a < algs.size(); ++a) {
      double sum = 0;
      for (std::size_t i = 0; i < heavy.size(); ++i) {
        sum += std::fabs(algs[a]->estimate(heavy[i]) - double(f[i])) / double(cp);
      }
      err[a].push_back(heavy.empty() ? 0.0 : sum / double(heavy.size()));
    }
  }
  for (std::size_t a = 0; a < configs.size(); ++a) {
    std::vector<std::string> row = {configs[a].label};
    for (const double e : err[a]) row.push_back(fmt(e));
    row.push_back(fmt(algs[a]->psi()));
    print_row(row);
  }
  std::printf("\n(expected shape: error ~ sqrt(V/N)/... decaying in N; r=2/r=4 rows\n"
              " sit below r=1 at equal N -- psi scales as 1/r (Corollary 6.8);\n"
              " 10-RHHH needs ~10x more packets for the same error)\n");
  return 0;
}
