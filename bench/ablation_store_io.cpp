// Ablation: durable window store I/O -- what archiving costs and what
// segment sizing buys.
//
// Three panels over a planted-trace stream (2D bytes hierarchy):
//   * archive write path vs segment size: serialize + append E merged
//     windows through WindowArchive (the archiver thread's exact work) --
//     windows/s, MB/s, resulting segments/bytes.
//   * cold query path vs segment size: reopen the store and answer a
//     merged last-8 query and a full replay -- the collector-restart and
//     offline-reprocessing costs.
//   * engine rotation overhead: the same windowed engine run with
//     archiving off vs on (ingest Mpps side by side). The archiver merges
//     off the packet path and does I/O on its own thread, so the two
//     columns should match within noise -- this is the "strictly off the
//     hot path" acceptance check, measured.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "engine/engine.hpp"
#include "store/archive.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

/// Builds E per-epoch merged windows from the key stream (one lattice per
/// epoch slice), the same objects a rotation hands the archiver.
std::vector<store::ArchivedWindow> make_windows(const Hierarchy& h,
                                                const std::vector<Key128>& keys,
                                                std::size_t epochs,
                                                const Args& args, int run) {
  std::vector<store::ArchivedWindow> out;
  out.reserve(epochs);
  const std::size_t epoch = keys.size() / epochs;
  for (std::size_t e = 0; e < epochs; ++e) {
    LatticeParams lp;
    lp.eps = args.eps;
    lp.delta = args.delta;
    lp.seed = args.seed + 1000 * static_cast<std::uint64_t>(run) + e;
    auto lat = std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp);
    for (std::size_t i = e * epoch; i < (e + 1) * epoch; ++i) {
      lat->update(keys[i]);
    }
    store::ArchivedWindow w;
    w.meta.epoch = e + 1;
    w.meta.wall_start_ns = static_cast<std::int64_t>(e) * 1'000'000'000;
    w.meta.wall_end_ns = static_cast<std::int64_t>(e + 1) * 1'000'000'000;
    w.meta.duration_ns = 1'000'000'000;
    w.meta.stream_length = lat->stream_length();
    w.meta.updates = lat->updates_performed();
    w.window = std::move(lat);
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  print_figure_header(
      "Store I/O",
      "Durable window store: archive throughput, cold-query latency, rotation overhead",
      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(4e6 * args.scale);
  const std::vector<Key128>& keys = trace_keys(h, "chicago16", n);
  constexpr std::size_t kEpochs = 24;
  const std::filesystem::path dir =
      std::filesystem::current_path() / "ablation_store_io.tmp";

  std::printf("\n-- archive write + cold query vs segment size, %zu windows --\n",
              kEpochs);
  print_row({"segment KiB", "write win/s", "write MB/s", "segments",
             "last-8 query ms", "replay ms"});
  for (const std::uint64_t seg_kib : {256u, 1024u, 4096u}) {
    RunningStats win_per_s;
    RunningStats write_mbs;
    RunningStats query_ms;
    RunningStats replay_ms;
    std::size_t segments = 0;
    for (int r = 0; r < args.runs; ++r) {
      std::filesystem::remove_all(dir);
      const std::vector<store::ArchivedWindow> windows =
          make_windows(h, keys, kEpochs, args, r);

      ArchiveConfig cfg;
      cfg.dir = dir.string();
      cfg.segment_bytes = seg_kib << 10;
      std::uint64_t bytes = 0;
      const double w0 = now_sec();
      {
        store::WindowArchive ar = store::WindowArchive::open_write(cfg);
        for (const store::ArchivedWindow& w : windows) {
          ar.append(w.meta, HierarchyKind::kIpv4TwoDimBytes, *w.window);
        }
        ar.close();
        bytes = ar.total_bytes();
        segments = ar.segments();
      }
      const double wdt = now_sec() - w0;
      win_per_s.add(static_cast<double>(kEpochs) / wdt);
      write_mbs.add(static_cast<double>(bytes) / wdt / 1e6);

      const store::WindowArchive cold = store::WindowArchive::open_read(dir.string());
      const double q0 = now_sec();
      const auto merged = cold.merged_last(8);
      query_ms.add((now_sec() - q0) * 1e3);
      if (merged == nullptr || merged->stream_length() == 0) std::printf("?");

      const double p0 = now_sec();
      store::WindowArchive::Replay it = cold.replay();
      store::ArchivedWindow w;
      std::uint64_t total = 0;
      while (it.next(w)) total += w.meta.stream_length;
      replay_ms.add((now_sec() - p0) * 1e3);
      if (total == 0) std::printf("?");
    }
    print_row({std::to_string(seg_kib), ci_cell(win_per_s), ci_cell(write_mbs),
               std::to_string(segments), ci_cell(query_ms), ci_cell(replay_ms)});
    std::filesystem::remove_all(dir);
  }

  std::printf("\n-- windowed engine (2 producers -> 2 workers), rotations = 16 --\n");
  print_row({"archiver", "Mpps (95% CI)", "stop drain ms", "archived",
             "queue drops"});
  for (const bool archived : {false, true}) {
    RunningStats mpps;
    RunningStats drain_ms;
    std::uint64_t archived_windows = 0;
    std::uint64_t queue_drops = 0;
    for (int r = 0; r < args.runs; ++r) {
      std::filesystem::remove_all(dir);
      EngineConfig cfg;
      cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
      cfg.monitor.algorithm = AlgorithmKind::kRhhh;
      cfg.monitor.eps = args.eps;
      cfg.monitor.delta = args.delta;
      cfg.monitor.seed = args.seed + static_cast<std::uint64_t>(r);
      cfg.workers = 2;
      cfg.producers = 2;
      cfg.overflow = OverflowPolicy::kBlock;
      cfg.history_depth = 4;
      if (archived) cfg.archive.dir = dir.string();
      const std::unique_ptr<HhhEngine> eng = make_engine(cfg);
      eng->start();
      const std::size_t epoch = std::max<std::size_t>(keys.size() / 16, 4);
      const double t0 = now_sec();
      for (std::size_t lo = 0; lo < keys.size(); lo += epoch) {
        const std::size_t hi = std::min(lo + epoch, keys.size());
        std::vector<std::thread> producers;
        for (std::uint32_t p = 0; p < 2; ++p) {
          producers.emplace_back([&, p] {
            HhhEngine::Producer& prod = eng->producer(p);
            const std::size_t plo = lo + (hi - lo) * p / 2;
            const std::size_t phi = lo + (hi - lo) * (p + 1) / 2;
            for (std::size_t i = plo; i < phi; ++i) prod.ingest(keys[i]);
            prod.flush();
          });
        }
        for (std::thread& t : producers) t.join();
        eng->rotate_epoch();
      }
      // Ingest + every synchronous rotation (the rotation-path check);
      // stop() additionally waits for the archiver to drain its queue and
      // seal the segment -- that shutdown cost is reported separately.
      const double t1 = now_sec();
      eng->stop();
      drain_ms.add((now_sec() - t1) * 1e3);
      mpps.add(static_cast<double>(keys.size()) / (t1 - t0) / 1e6);
      const EngineStats s = eng->stats();
      archived_windows = s.archived_windows;
      queue_drops = s.archive_queue_drops;
    }
    print_row({archived ? "on" : "off", ci_cell(mpps), ci_cell(drain_ms),
               std::to_string(archived_windows), std::to_string(queue_drops)});
    std::filesystem::remove_all(dir);
  }

  std::printf(
      "\n(expected shape: write throughput flat-ish in segment size -- the\n"
      " payload dominates the frame overhead -- with segment count inverse\n"
      " to size; query/replay pay one decode per selected window; the\n"
      " engine's Mpps columns should agree within CI on multi-core hosts --\n"
      " a rotation only snapshots flat per-shard blobs, while the decode +\n"
      " merge + I/O run on the archiver thread, whose backlog surfaces as\n"
      " stop-drain time at these tiny epochs; a single-core host has no\n"
      " spare core, so the archiver's CPU time serializes with ingest --\n"
      " the same caveat as ablation_window_scaling's pacing note)\n");
  return 0;
}
