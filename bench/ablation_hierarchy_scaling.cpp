// Ablation: update cost vs hierarchy size H (Sections 1/2/7: prior work is
// Omega(H) per packet; IPv6 and 2D hierarchies make H grow, which is the
// paper's motivation for an O(1) algorithm).
//
// H sweep: 5 (1D IPv4 bytes), 17 (1D IPv6 bytes), 25 (2D IPv4 bytes),
// 33 (1D IPv4 bits), 33 (1D IPv6 nibbles), 81 (2D IPv4 nibbles).
// Reported: M updates/s for RHHH, 10-RHHH, MST, Partial Ancestry.
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"
#include "trace/address_model.hpp"
#include "trace/zipf.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

/// IPv6 key stream with the same flow-popularity model as the presets.
std::vector<Key128> ipv6_keys(std::size_t n, std::uint64_t seed) {
  HierarchicalAddressModel model(seed, {1.25, 1.0, 0.85, 0.7});
  ZipfDistribution flows(1 << 20, 1.05);
  Xoroshiro128 rng(seed);
  std::vector<Key128> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(model.address6(flows(rng)).key());
  }
  return out;
}

double mpps(HhhAlgorithm& alg, const std::vector<Key128>& keys) {
  alg.clear();
  const double t0 = now_sec();
  for (const Key128& k : keys) alg.update(k);
  return static_cast<double>(keys.size()) / (now_sec() - t0) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  print_figure_header("Ablation: hierarchy-size scaling",
                      "update speed (M packets/s) vs H", args);

  struct Panel {
    std::string label;
    Hierarchy h;
    bool ipv6;
  };
  std::vector<Panel> panels;
  panels.push_back({"1D IPv4 bytes", Hierarchy::ipv4_1d(Granularity::kByte), false});
  panels.push_back({"1D IPv6 bytes", Hierarchy::ipv6_1d(Granularity::kByte), true});
  panels.push_back({"2D IPv4 bytes", Hierarchy::ipv4_2d(Granularity::kByte), false});
  panels.push_back({"1D IPv4 bits", Hierarchy::ipv4_1d(Granularity::kBit), false});
  panels.push_back({"1D IPv6 nibbles", Hierarchy::ipv6_1d(Granularity::kNibble), true});
  panels.push_back({"2D IPv4 nibbles", Hierarchy::ipv4_2d(Granularity::kNibble), false});

  const auto n = static_cast<std::size_t>(400000 * args.scale);
  print_row({"hierarchy", "H", "RHHH", "10-RHHH", "MST", "Partial-Anc."});

  for (const Panel& panel : panels) {
    const std::vector<Key128> keys =
        panel.ipv6 ? ipv6_keys(n, args.seed)
                   : trace_keys(panel.h, "chicago16", n);

    LatticeParams lp;
    lp.eps = args.eps;
    lp.delta = args.delta;
    lp.seed = args.seed;
    RhhhSpaceSaving r1(panel.h, LatticeMode::kRhhh, lp);
    LatticeParams lp10 = lp;
    lp10.V = 10 * static_cast<std::uint32_t>(panel.h.size());
    RhhhSpaceSaving r10(panel.h, LatticeMode::kRhhh, lp10);
    RhhhSpaceSaving mst(panel.h, LatticeMode::kMst, lp);
    TrieHhh partial(panel.h, AncestryMode::kPartial, args.eps);

    RunningStats s1, s10, sm, sp;
    for (int r = 0; r < args.runs; ++r) {
      s1.add(mpps(r1, keys));
      s10.add(mpps(r10, keys));
      sm.add(mpps(mst, keys));
      sp.add(mpps(partial, keys));
    }
    print_row({panel.label, std::to_string(panel.h.size()), ci_cell(s1),
               ci_cell(s10), ci_cell(sm), ci_cell(sp)});
  }
  std::printf("\n(expected shape: RHHH/10-RHHH flat across H; MST and the trie\n"
              " degrade ~linearly in H -- the paper's IPv6 argument)\n");
  return 0;
}
