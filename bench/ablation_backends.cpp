// Ablation: heavy-hitter backend choice (paper Section 3.1: "other
// algorithms can also be used" -- Definition 4 is the only requirement;
// Space-Saving is used "because it is believed to have an empirical edge").
//
// RHHH over Space-Saving / Misra-Gries / Lossy Counting / Count-Min:
// update speed plus result quality (false-positive ratio and recall against
// the exact HHH set) on the same stream.
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

template <class Backend>
void run_backend(const char* label, const Hierarchy& h, const Args& args,
                 const std::vector<Key128>& keys, const HhhSet& exact) {
  LatticeParams lp;
  lp.eps = args.eps;
  lp.delta = args.delta;
  lp.seed = args.seed;
  LatticeHhh<Backend> alg(h, LatticeMode::kRhhh, lp);
  RunningStats speed;
  for (int r = 0; r < args.runs; ++r) {
    alg.clear();
    const double t0 = now_sec();
    for (const Key128& k : keys) alg.update(k);
    speed.add(static_cast<double>(keys.size()) / (now_sec() - t0) / 1e6);
  }
  const FalsePositiveReport rep = false_positives(exact, alg.output(args.theta));
  print_row({label, ci_cell(speed), fmt(rep.ratio()), fmt(rep.recall()),
             fmt(double(rep.returned))});
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  // Defaults chosen so psi < N and the sampling slack sits well below
  // theta*N: the quality columns then reflect the backends, not the
  // pre-convergence regime.
  args.theta = 0.05;
  print_figure_header("Ablation: HH backend (Definition 4)",
                      "RHHH speed & quality per backend, 2D bytes, sanjose14",
                      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(4e6 * args.scale);
  const auto& keys = trace_keys(h, "sanjose14", n);

  ExactHhh truth(h);
  for (const Key128& k : keys) truth.add(k);
  const HhhSet exact = truth.compute(args.theta);
  std::printf("exact HHH set size at theta=%g: %zu\n", args.theta, exact.size());

  print_row({"backend", "M updates/s", "FP ratio", "recall", "returned"});
  run_backend<SpaceSaving<Key128>>("Space-Saving", h, args, keys, exact);
  run_backend<MisraGries<Key128>>("Misra-Gries", h, args, keys, exact);
  run_backend<LossyCounting<Key128>>("Lossy Counting", h, args, keys, exact);
  run_backend<CountMinHh<Key128>>("Count-Min + top-k", h, args, keys, exact);
  run_backend<CountSketchHh<Key128>>("Count Sketch + top-k", h, args, keys, exact);
  run_backend<ExactCounter<Key128>>("Exact (unbounded)", h, args, keys, exact);

  std::printf("\n(expected shape: recall ~1.0 everywhere; Space-Saving fastest or\n"
              " near-fastest with the lowest FP ratio -- the paper's rationale\n"
              " for choosing it)\n");
  return 0;
}
