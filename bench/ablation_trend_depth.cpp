// Ablation: window-ring history depth K -- what trend queries cost.
//
// The K-deep WindowRing (core/window_ring.hpp) retains K sealed epochs
// behind the live one so trend()/emerging_sustained() can see k-epoch
// growth curves. The price is K extra same-configuration lattices held in
// memory; rotation itself stays O(counters-clear) regardless of K, so
// ingest throughput should be flat in K while memory grows linearly.
//
// Two panels:
//   * core ring: a WindowRing<RhhhSpaceSaving> driven single-threaded with
//     rotations every n/16 packets -- Mpps (rotations included), per-probe
//     trend() latency over the full retained history, resident lattice
//     memory.
//   * windowed engine: the same stream through a 2-producer/2-worker
//     HhhEngine at EngineConfig::history_depth = K, manual rotations on
//     stream position, plus one trend_snapshot() per epoch -- Mpps and the
//     K-aligned snapshot latency.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/bench_common.hpp"
#include "core/window_ring.hpp"
#include "engine/engine.hpp"
#include "net/ipv4.hpp"
#include "util/random.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

std::size_t lattice_memory_bytes(const RhhhSpaceSaving& alg) {
  std::size_t bytes = 0;
  for (std::uint32_t d = 0; d < alg.H(); ++d) {
    bytes += alg.instance(d).memory_bytes();
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  print_figure_header(
      "Trend depth",
      "WindowRing history depth K: ingest Mpps, trend-probe latency, memory",
      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(4e6 * args.scale);
  const std::vector<Key128>& keys = trace_keys(h, "chicago16", n);
  const std::size_t epoch = std::max<std::size_t>(n / 16, 4);
  const Prefix probe{h.node_index(2, 0),
                     h.mask_key(h.node_index(2, 0),
                                Key128::from_pair(ipv4(66, 66, 1, 2),
                                                  ipv4(203, 0, 113, 9)))};

  std::printf("\n-- core WindowRing, 2D bytes, epoch = n/16 --\n");
  print_row({"depth K", "Mpps (95% CI)", "trend us/probe", "memory MB"});
  for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u}) {
    RunningStats mpps;
    double probe_us = 0.0;
    double mem_mb = 0.0;
    for (int r = 0; r < args.runs; ++r) {
      LatticeParams lp;
      lp.eps = args.eps;
      lp.delta = args.delta;
      lp.seed = args.seed + static_cast<std::uint64_t>(r);
      WindowRing<RhhhSpaceSaving> ring(depth, [&](std::size_t slot) {
        LatticeParams slp = lp;
        slp.seed = lp.seed + slot;
        return std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, slp);
      });
      const double t0 = now_sec();
      std::size_t next_rotate = epoch;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        ring.live().update(keys[i]);
        if (i + 1 == next_rotate) {
          ring.rotate();
          next_rotate += epoch;
        }
      }
      const double dt = now_sec() - t0;
      mpps.add(static_cast<double>(keys.size()) / dt / 1e6);

      // Probe latency over the whole retained history (K+1 estimates).
      constexpr int kProbes = 2000;
      const auto windows = ring.windows_oldest_first();
      std::vector<const HhhAlgorithm*> alg_windows(windows.begin(), windows.end());
      const double q0 = now_sec();
      double sink = 0.0;
      for (int q = 0; q < kProbes; ++q) {
        for (const TrendPoint& tp : trend_of(alg_windows, probe)) sink += tp.share;
      }
      probe_us = (now_sec() - q0) / kProbes * 1e6;
      if (sink < 0.0) std::printf("?");  // keep the probe loop alive

      std::size_t bytes = 0;
      for (const RhhhSpaceSaving* w : windows) bytes += lattice_memory_bytes(*w);
      mem_mb = static_cast<double>(bytes) / 1e6;
    }
    print_row({std::to_string(depth), ci_cell(mpps), fmt(probe_us), fmt(mem_mb)});
  }

  std::printf("\n-- windowed HhhEngine (2 producers -> 2 workers), epoch = n/16 --\n");
  print_row({"depth K", "Mpps (95% CI)", "trend_snapshot ms"});
  for (const std::size_t depth : {1u, 4u, 16u}) {
    RunningStats mpps;
    double snap_ms = 0.0;
    for (int r = 0; r < args.runs; ++r) {
      EngineConfig cfg;
      cfg.monitor.hierarchy = HierarchyKind::kIpv4TwoDimBytes;
      cfg.monitor.algorithm = AlgorithmKind::kRhhh;
      cfg.monitor.eps = args.eps;
      cfg.monitor.delta = args.delta;
      cfg.monitor.seed = args.seed + static_cast<std::uint64_t>(r);
      cfg.workers = 2;
      cfg.producers = 2;
      cfg.overflow = OverflowPolicy::kBlock;  // lossless: Mpps is real work
      cfg.history_depth = depth;
      const std::unique_ptr<HhhEngine> eng = make_engine(cfg);
      eng->start();
      const double t0 = now_sec();
      std::size_t next_rotate = epoch;
      for (std::size_t lo = 0; lo < keys.size(); lo += epoch) {
        const std::size_t hi = std::min(lo + epoch, keys.size());
        std::vector<std::thread> producers;
        for (std::uint32_t p = 0; p < 2; ++p) {
          producers.emplace_back([&, p] {
            HhhEngine::Producer& prod = eng->producer(p);
            const std::size_t plo = lo + (hi - lo) * p / 2;
            const std::size_t phi = lo + (hi - lo) * (p + 1) / 2;
            for (std::size_t i = plo; i < phi; ++i) prod.ingest(keys[i]);
            prod.flush();
          });
        }
        for (std::thread& t : producers) t.join();
        if (hi >= next_rotate) {
          eng->rotate_epoch();
          next_rotate += epoch;
        }
        const double s0 = now_sec();
        const TrendSnapshot snap = eng->trend_snapshot();
        snap_ms = (now_sec() - s0) * 1e3;
        if (snap.current_length() == 0 && snap.sealed_windows() == 0) {
          std::printf("?");  // unreachable; defeats dead-code elimination
        }
      }
      eng->stop();
      const double dt = now_sec() - t0;
      mpps.add(static_cast<double>(keys.size()) / dt / 1e6);
    }
    print_row({std::to_string(depth), ci_cell(mpps), fmt(snap_ms)});
  }

  std::printf(
      "\n(expected shape: core-ring Mpps flat in K -- rotation cost is one\n"
      " counter clear, not a function of history -- with memory linear in\n"
      " K+1 and trend probes linear in K; the engine panel runs a full\n"
      " trend_snapshot every epoch, so its Mpps *includes* one K-window\n"
      " cross-shard merge per epoch -- the price of a detection loop that\n"
      " watches the whole history at small epochs; poll less often or\n"
      " shrink K if ingest dominates)\n");
  return 0;
}
