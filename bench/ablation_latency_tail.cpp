// Ablation: per-packet latency tails -- the paper's core argument for O(1)
// *worst case* over O(1) *amortized* (Section 1): the strawman that samples
// packets w.p. H/V but then updates all H levels has the same average cost
// as RHHH yet a tail H times worse, which "could both delay the
// corresponding victim packet and possibly cause buffers to overflow".
//
// Reported: p50 / p99 / p99.9 / max per-update latency for RHHH,
// Sampled-MST (same sampling rate) and MST.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

struct Tail {
  double p50, p99, p999, max, mean;
};

Tail measure(HhhAlgorithm& alg, const std::vector<Key128>& keys) {
  std::vector<double> lat;
  lat.reserve(keys.size());
  for (const Key128& k : keys) {
    const double t0 = now_sec();
    alg.update(k);
    lat.push_back(now_sec() - t0);
  }
  std::sort(lat.begin(), lat.end());
  auto at = [&](double q) {
    return lat[static_cast<std::size_t>(q * (double(lat.size()) - 1))] * 1e9;
  };
  double sum = 0;
  for (const double v : lat) sum += v;
  return Tail{at(0.50), at(0.99), at(0.999), lat.back() * 1e9,
              sum / double(lat.size()) * 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  print_figure_header("Ablation: latency tail (O(1) worst case vs amortized)",
                      "per-update latency in ns, 2D bytes, chicago16", args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(1e6 * args.scale);
  const auto& keys = trace_keys(h, "chicago16", n);
  const auto H = static_cast<std::uint32_t>(h.size());

  // The paper's Section 1 strawman samples packets with probability 1/H and
  // feeds them to the O(H) algorithm -- the same *average* work as RHHH at
  // V = H (one counter update per packet), but concentrated in bursts.
  LatticeParams lp;
  lp.eps = args.eps;
  lp.delta = args.delta;
  lp.seed = args.seed;

  print_row({"algorithm", "mean", "p50", "p99", "p99.9", "max"});
  struct Entry {
    std::string name;
    std::unique_ptr<HhhAlgorithm> alg;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"RHHH V=H (O(1) worst)",
       std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kRhhh, lp)});
  LatticeParams lp_strawman = lp;
  lp_strawman.V = H * H;  // sample w.p. H/V = 1/H, then update all H levels
  entries.push_back(
      {"Sampled-MST p=1/H",
       std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kSampledMst, lp_strawman)});
  entries.push_back(
      {"MST (O(H))", std::make_unique<RhhhSpaceSaving>(h, LatticeMode::kMst, lp)});

  for (auto& e : entries) {
    const Tail t = measure(*e.alg, keys);
    print_row({e.name, fmt(t.mean), fmt(t.p50), fmt(t.p99), fmt(t.p999),
               fmt(t.max)});
  }
  std::printf("\n(expected shape: RHHH and the strawman share ~1 counter update\n"
              " per packet on average, but the strawman's p99/p99.9 jump ~Hx --\n"
              " the 'victim packets' of Section 1; MST is uniformly slow. Timer\n"
              " overhead adds a constant to every cell.)\n");
  return 0;
}
