// Figure 7: dataplane implementation throughput as V sweeps from H (RHHH)
// to 10H (10-RHHH), 2D bytes. Larger V means fewer packets update a
// Space-Saving instance, so throughput rises monotonically with V.
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"
#include "vswitch/datapath.hpp"

using namespace rhhh;
using namespace rhhh::bench;

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  args.eps = 0.001;
  args.delta = 0.001;
  print_figure_header("Figure 7", "Dataplane throughput (Mpps) vs V, 2D bytes",
                      args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto H = static_cast<std::uint32_t>(h.size());
  const auto n = static_cast<std::size_t>(2e6 * args.scale);
  const auto& packets = trace_packets("chicago16", n);

  print_row({"V", "V/H", "Mpps (95% CI)"});
  for (std::uint32_t mult = 1; mult <= 10; ++mult) {
    LatticeParams lp;
    lp.eps = args.eps;
    lp.delta = args.delta;
    lp.seed = args.seed;
    lp.V = mult * H;
    RhhhSpaceSaving alg(h, LatticeMode::kRhhh, lp);
    HhhHook hook(alg);
    RunningStats s;
    for (int r = 0; r < args.runs; ++r) {
      alg.clear();
      Datapath dp;
      dp.set_hook(&hook);
      const double t0 = now_sec();
      dp.run(packets);
      s.add(static_cast<double>(packets.size()) / (now_sec() - t0) / 1e6);
    }
    print_row({fmt(double(lp.V)), xcell(std::to_string(mult)), ci_cell(s)});
  }
  std::printf("\n(expected shape: monotonically increasing with V, saturating\n"
              " toward the unmodified-switch rate)\n");
  return 0;
}
