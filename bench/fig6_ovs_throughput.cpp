// Figure 6: virtual-switch dataplane throughput with HHH measurement in the
// packet path (eps=0.001, delta=0.001, 2D bytes, Chicago16). The paper
// measured 14.88 Mpps line rate: unmodified OVS 14.4, 10-RHHH 13.8 (-4%),
// RHHH 10.6, Partial Ancestry 5.6, MST lowest.
//
// Expected shape here: same ordering -- Unmodified >= 10-RHHH > RHHH >
// Partial/Full Ancestry >= MST -- with 10-RHHH within a few percent of the
// unmodified switch.
#include <cstdio>
#include <vector>

#include "common/bench_common.hpp"
#include "vswitch/datapath.hpp"

using namespace rhhh;
using namespace rhhh::bench;

namespace {

double dataplane_mpps(const std::vector<PacketRecord>& packets,
                      MeasurementHook* hook) {
  Datapath dp;
  dp.set_hook(hook);
  const double t0 = now_sec();
  dp.run(packets);
  const double dt = now_sec() - t0;
  return static_cast<double>(packets.size()) / dt / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Args::parse(argc, argv);
  args.eps = 0.001;  // the paper's Figure 6 parameters
  args.delta = 0.001;
  print_figure_header("Figure 6",
                      "Dataplane throughput (Mpps), 2D bytes, Chicago16", args);

  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto n = static_cast<std::size_t>(2e6 * args.scale);
  const auto& packets = trace_packets("chicago16", n);

  print_row({"configuration", "Mpps (95% CI)", "vs unmodified"});

  // Unmodified switch first (the baseline bar).
  RunningStats base;
  for (int r = 0; r < args.runs; ++r) base.add(dataplane_mpps(packets, nullptr));
  print_row({"Unmodified", ci_cell(base), "x1.00"});

  auto roster = paper_roster(h, args.eps, args.delta, args.seed);
  // Paper's Figure 6 shows 10-RHHH, RHHH, MST and Partial Ancestry; we also
  // report Full Ancestry for completeness.
  for (auto& alg : roster) {
    HhhHook hook(*alg);
    RunningStats s;
    for (int r = 0; r < args.runs; ++r) {
      alg->clear();
      s.add(dataplane_mpps(packets, &hook));
    }
    char rel[32];
    std::snprintf(rel, sizeof rel, "x%.2f", s.mean() / base.mean());
    print_row({std::string(alg->name()), ci_cell(s), rel});
  }

  std::printf("\n(expected shape: Unmodified >= 10-RHHH > RHHH > ancestry >= MST;\n"
              " 10-RHHH within a few %% of Unmodified, as in the paper's 13.8\n"
              " vs 14.4 Mpps)\n");
  return 0;
}
