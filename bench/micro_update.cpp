// Micro-benchmarks (google-benchmark): the cost decomposition of a single
// RHHH update (Theorem 6.18's O(1) pieces -- bounded RNG draw, mask, one
// Space-Saving increment) against MST's O(H) loop and the trie update, per
// hierarchy. Complements Figure 5's end-to-end throughput numbers.
#include <benchmark/benchmark.h>

#include <vector>

#include "hh/space_saving.hpp"
#include "hhh/lattice_hhh.hpp"
#include "hhh/trie_hhh.hpp"
#include "trace/trace_gen.hpp"
#include "util/random.hpp"

namespace rhhh {
namespace {

const std::vector<Key128>& keys_2d() {
  static const std::vector<Key128> keys = [] {
    TraceGenerator gen(trace_preset("chicago16"));
    const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
    std::vector<Key128> out;
    out.reserve(1 << 18);
    for (int i = 0; i < (1 << 18); ++i) out.push_back(h.key_of(gen.next()));
    return out;
  }();
  return keys;
}

Hierarchy hierarchy_for(int h_size) {
  switch (h_size) {
    case 5: return Hierarchy::ipv4_1d(Granularity::kByte);
    case 25: return Hierarchy::ipv4_2d(Granularity::kByte);
    case 33: return Hierarchy::ipv4_1d(Granularity::kBit);
    default: return Hierarchy::ipv4_2d(Granularity::kByte);
  }
}

void BM_RngBoundedDraw(benchmark::State& state) {
  Xoroshiro128 rng(1);
  std::uint32_t sink = 0;
  for (auto _ : state) {
    sink += rng.bounded(250);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngBoundedDraw);

void BM_MaskKey(benchmark::State& state) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  const auto& keys = keys_2d();
  std::size_t i = 0;
  Key128 sink{};
  for (auto _ : state) {
    sink = sink ^ h.mask_key(7, keys[i++ & (keys.size() - 1)]);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MaskKey);

void BM_SpaceSavingIncrement(benchmark::State& state) {
  SpaceSaving<Key128> ss(static_cast<std::size_t>(state.range(0)));
  const auto& keys = keys_2d();
  std::size_t i = 0;
  for (auto _ : state) {
    ss.increment(keys[i++ & (keys.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpaceSavingIncrement)->Arg(64)->Arg(1024)->Arg(16384);

template <LatticeMode Mode>
void BM_LatticeUpdate(benchmark::State& state) {
  const Hierarchy h = hierarchy_for(static_cast<int>(state.range(0)));
  LatticeParams lp;
  lp.eps = 0.001;
  lp.delta = 0.001;
  if (Mode == LatticeMode::kRhhh && state.range(1) > 1) {
    lp.V = static_cast<std::uint32_t>(state.range(1)) *
           static_cast<std::uint32_t>(h.size());
  }
  LatticeHhh<SpaceSaving<Key128>> alg(h, Mode, lp);
  const auto& keys = keys_2d();
  std::size_t i = 0;
  for (auto _ : state) {
    alg.update(keys[i++ & (keys.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("H=" + std::to_string(h.size()));
}
BENCHMARK_TEMPLATE(BM_LatticeUpdate, LatticeMode::kRhhh)
    ->Args({5, 1})
    ->Args({25, 1})
    ->Args({33, 1})
    ->Args({25, 10});
BENCHMARK_TEMPLATE(BM_LatticeUpdate, LatticeMode::kMst)
    ->Args({5, 1})
    ->Args({25, 1})
    ->Args({33, 1});

/// The engine hot path: whole batches through the staged update_batch
/// pipeline (block-RNG, survivor compaction, prefetched apply). Args are
/// {H, V-multiplier, batch size}; items processed counts packets, so
/// items/s is directly comparable to BM_LatticeUpdate.
template <LatticeMode Mode>
void BM_LatticeUpdateBatch(benchmark::State& state) {
  const Hierarchy h = hierarchy_for(static_cast<int>(state.range(0)));
  LatticeParams lp;
  lp.eps = 0.001;
  lp.delta = 0.001;
  if (Mode == LatticeMode::kRhhh && state.range(1) > 1) {
    lp.V = static_cast<std::uint32_t>(state.range(1)) *
           static_cast<std::uint32_t>(h.size());
  }
  LatticeHhh<SpaceSaving<Key128>> alg(h, Mode, lp);
  const auto& keys = keys_2d();
  const auto batch = static_cast<std::size_t>(state.range(2));
  std::size_t i = 0;
  for (auto _ : state) {
    if (i + batch > keys.size()) i = 0;
    alg.update_batch(keys.data() + i, batch);
    i += batch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.SetLabel("H=" + std::to_string(h.size()) +
                 " batch=" + std::to_string(batch));
}
BENCHMARK_TEMPLATE(BM_LatticeUpdateBatch, LatticeMode::kRhhh)
    ->Args({25, 1, 2048})
    ->Args({25, 10, 256})
    ->Args({25, 10, 2048})
    ->Args({33, 10, 2048});
BENCHMARK_TEMPLATE(BM_LatticeUpdateBatch, LatticeMode::kMst)->Args({25, 1, 2048});

void BM_TrieUpdate(benchmark::State& state) {
  const Hierarchy h = hierarchy_for(static_cast<int>(state.range(0)));
  TrieHhh alg(h, state.range(1) == 0 ? AncestryMode::kPartial : AncestryMode::kFull,
              0.001);
  const auto& keys = keys_2d();
  std::size_t i = 0;
  for (auto _ : state) {
    alg.update(keys[i++ & (keys.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TrieUpdate)->Args({25, 0})->Args({25, 1})->Args({33, 0});

void BM_Output(benchmark::State& state) {
  const Hierarchy h = Hierarchy::ipv4_2d(Granularity::kByte);
  LatticeParams lp;
  lp.eps = 0.01;
  lp.delta = 0.001;
  LatticeHhh<SpaceSaving<Key128>> alg(h, LatticeMode::kRhhh, lp);
  const auto& keys = keys_2d();
  for (const Key128& k : keys) alg.update(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg.output(0.02));
  }
}
BENCHMARK(BM_Output);

}  // namespace
}  // namespace rhhh

BENCHMARK_MAIN();
